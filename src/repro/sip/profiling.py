"""Per-super-instruction profiling.

Because basic operations are coarse (one super instruction does real
work), the SIP can keep detailed timing without measurable overhead
(paper, Section VI-B).  Each worker records, per bytecode pc: execution
count, busy (compute) time, and wait time (time blocked on block
arrivals); plus per-pardo elapsed and wait totals.  The relationship
between source and profile is transparent because the compiler does no
reordering -- each pc maps straight back to a source line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..sial.bytecode import CompiledProgram

__all__ = ["InstrStats", "PardoStats", "WorkerProfile", "RunProfile"]


@dataclass
class InstrStats:
    count: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0


@dataclass
class PardoStats:
    entries: int = 0
    iterations: int = 0
    elapsed: float = 0.0
    wait_time: float = 0.0
    chunk_wait: float = 0.0


@dataclass
class WorkerProfile:
    """One worker's timings, keyed by bytecode pc / pardo id."""

    instr: dict[int, InstrStats] = field(default_factory=dict)
    pardo: dict[int, PardoStats] = field(default_factory=dict)
    total_busy: float = 0.0
    total_wait: float = 0.0
    elapsed: float = 0.0
    #: every instruction dispatched by the interpreter loop, fast-path
    #: included -- the denominator the optimizer's deltas are judged by
    instructions: int = 0

    def record_instr(self, pc: int, busy: float, wait: float) -> None:
        stats = self.instr.get(pc)
        if stats is None:
            stats = self.instr[pc] = InstrStats()
        stats.count += 1
        stats.busy_time += busy
        stats.wait_time += wait
        self.total_busy += busy
        self.total_wait += wait

    def pardo_stats(self, pardo_id: int) -> PardoStats:
        stats = self.pardo.get(pardo_id)
        if stats is None:
            stats = self.pardo[pardo_id] = PardoStats()
        return stats


@dataclass
class RunProfile:
    """Aggregated profile across all workers of one run."""

    workers: list[WorkerProfile]
    elapsed: float
    program: Optional[CompiledProgram] = None
    # fast-path observability: a PlanCacheStats and a CowStats when the
    # run used compiled kernel plans / zero-copy transport, else None
    plan_cache: Optional[Any] = None
    cow: Optional[Any] = None
    # memory-pressure observability: an aggregated MemStats plus the
    # per-rank budget it was measured against
    memory: Optional[Any] = None
    memory_budget: float = 0.0
    # pardo dole-out observability: the master's SchedStats
    scheduling: Optional[Any] = None
    # mp transport observability: a dict with the summed ArenaStats and
    # BatchStats when the run used the multiprocess backend, else None
    transport: Optional[Any] = None
    # block movement observability: the summed BlockIOStats of every
    # rank's transfer engine (fetches, coalescing, backpressure)
    blockio: Optional[Any] = None

    @property
    def total_busy(self) -> float:
        return sum(w.total_busy for w in self.workers)

    @property
    def total_wait(self) -> float:
        return sum(w.total_wait for w in self.workers)

    @property
    def wait_fraction(self) -> float:
        """Average wait time as a fraction of elapsed time per worker.

        This is the paper's "percentage of elapsed time spent waiting
        for communication" (Fig. 2, bottom line).
        """
        if not self.workers or self.elapsed <= 0:
            return 0.0
        return sum(w.total_wait for w in self.workers) / (
            len(self.workers) * self.elapsed
        )

    def pardo_totals(self) -> dict[int, PardoStats]:
        out: dict[int, PardoStats] = {}
        for w in self.workers:
            for pid, stats in w.pardo.items():
                agg = out.setdefault(pid, PardoStats())
                agg.entries += stats.entries
                agg.iterations += stats.iterations
                agg.elapsed = max(agg.elapsed, stats.elapsed)
                agg.wait_time += stats.wait_time
                agg.chunk_wait += stats.chunk_wait
        return out

    def by_line(self) -> dict[Optional[int], InstrStats]:
        """Instruction stats aggregated by SIAL source line.

        Instructions without a recorded location merge under ``None``.
        Requires ``program`` (the pc -> location map).
        """
        out: dict[Optional[int], InstrStats] = {}
        for w in self.workers:
            for pc, stats in w.instr.items():
                line: Optional[int] = None
                if self.program is not None:
                    loc = self.program.instructions[pc].location
                    if loc is not None:
                        line = loc.line
                agg = out.setdefault(line, InstrStats())
                agg.count += stats.count
                agg.busy_time += stats.busy_time
                agg.wait_time += stats.wait_time
        return out

    def hotspots(self, limit: int = 10) -> list[tuple[int, InstrStats]]:
        """The costliest instructions across all workers."""
        merged: dict[int, InstrStats] = {}
        for w in self.workers:
            for pc, stats in w.instr.items():
                agg = merged.setdefault(pc, InstrStats())
                agg.count += stats.count
                agg.busy_time += stats.busy_time
                agg.wait_time += stats.wait_time
        ranked = sorted(
            merged.items(), key=lambda kv: kv[1].busy_time + kv[1].wait_time,
            reverse=True,
        )
        return ranked[:limit]

    def report(self, limit: int = 10) -> str:
        """Human-readable profile, mapping pcs back to source lines."""
        lines = [
            f"elapsed (simulated): {self.elapsed:.6f} s",
            f"workers: {len(self.workers)}",
            f"wait fraction: {100.0 * self.wait_fraction:.2f} %",
            "hot super instructions:",
        ]
        for pc, stats in self.hotspots(limit):
            where = ""
            if self.program is not None:
                instr = self.program.instructions[pc]
                if instr.location is not None:
                    where = f"  (line {instr.location.line})"
                lines.append(
                    f"  pc={pc:<5d} {instr.op:<18s} n={stats.count:<8d} "
                    f"busy={stats.busy_time:.6f}s wait={stats.wait_time:.6f}s"
                    f"{where}"
                )
            else:
                lines.append(
                    f"  pc={pc:<5d} n={stats.count:<8d} "
                    f"busy={stats.busy_time:.6f}s wait={stats.wait_time:.6f}s"
                )
        for pid, stats in sorted(self.pardo_totals().items()):
            lines.append(
                f"pardo {pid}: iterations={stats.iterations} "
                f"elapsed={stats.elapsed:.6f}s wait={stats.wait_time:.6f}s "
                f"chunk_wait={stats.chunk_wait:.6f}s"
            )
        if self.plan_cache is not None:
            p = self.plan_cache
            lines.append(
                f"kernel plans: {p.hits} hits / {p.misses} misses "
                f"(hit rate {100.0 * p.hit_rate:.1f} %, "
                f"{p.gemm_plans} gemm / {p.einsum_plans} einsum)"
            )
        if self.cow is not None:
            c = self.cow
            lines.append(
                f"zero-copy transport: {c.sends_shared} payloads shared, "
                f"{c.bytes_not_copied} bytes not copied, "
                f"{c.cow_copies} copy-on-write copies "
                f"({c.cow_bytes_copied} bytes)"
            )
        t = self.transport
        if t is not None:
            a = t["arena"]
            b = t["batches"]
            lines.append(
                f"mp transport arena: {a.hits} slot fills + "
                f"{a.handoffs} zero-copy handoffs / {a.misses} one-shot "
                f"misses, {a.bytes_zero_copy} bytes mapped without a "
                f"receive copy, {a.slabs_created} slabs "
                f"({a.slab_bytes} B), {a.refs_leaked} leases leaked"
            )
            lines.append(
                f"mp control plane: {b.messages} messages in "
                f"{b.batches} frames "
                f"({t['batch_msgs_per_write']:.1f} msgs/write, "
                f"{b.frame_bytes} framed bytes)"
            )
        s = self.scheduling
        if s is not None and s.chunks:
            line = (
                f"scheduling ({s.policy}): {s.chunks} chunks, "
                f"{s.iterations} iterations"
            )
            if s.policy == "locality":
                line += (
                    f", {s.locality_hits} locality hits "
                    f"({100.0 * s.locality_rate:.1f} %), "
                    f"{s.steals} steals ({s.stolen_iterations} iterations)"
                )
            lines.append(line)
        m = self.memory
        if m is not None and (m.cascades or m.spills or m.pressure_evictions):
            lines.append(
                f"memory pressure: {m.cascades} cascades, "
                f"{m.pressure_evictions} pressure evictions, "
                f"{m.spills} spills ({m.spill_bytes} B out), "
                f"{m.faults_in} faults back in ({m.fault_bytes} B), "
                f"peak {m.peak_bytes} B resident / "
                f"{m.peak_spill_bytes} B on scratch "
                f"(budget {self.memory_budget:.0f} B)"
            )
        return "\n".join(lines)
