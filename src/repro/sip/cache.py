"""LRU block caches.

Workers cache remote distributed-array blocks they fetched (so a recent
``get`` is free), and I/O servers cache served-array blocks with
write-back semantics (paper, Section V-B: "Each I/O server contains a
cache ... Replacement is done using a LRU strategy").

Entries move through three states:

* *pending*  -- a fetch is in flight; an Event fires on arrival;
* *ready*    -- data present (and, on servers, possibly *dirty*);
* evicted    -- removed by LRU pressure; a later use must refetch.

Pending and pinned entries are never evicted.  The cache records the
statistics the prefetch-tuning ablation needs: hits, misses, evictions
of blocks that were fetched but never used (the BlueGene/P pathology
from Section VI-A), and refetches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..simmpi.simulator import Event
from .blocks import Block, BlockId
from .config import SIPError

__all__ = ["BlockCache", "CacheEntry", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    evicted_before_use: int = 0
    refetches: int = 0


@dataclass
class CacheEntry:
    block: Optional[Block] = None
    arrival: Optional[Event] = None  # pending fetch completion
    dirty: bool = False
    pinned: int = 0
    used: bool = False  # read at least once since insertion
    fetch_count: int = 0
    charged: int = 0  # bytes charged against the memory ledger

    @property
    def pending(self) -> bool:
        return self.block is None


class BlockCache:
    """An LRU cache of blocks keyed by :class:`BlockId`."""

    def __init__(
        self,
        capacity_blocks: int,
        name: str = "cache",
        on_evict: Optional[Callable[[BlockId, CacheEntry], None]] = None,
        nbytes_of: Optional[Callable[[BlockId], int]] = None,
        ledger=None,
    ) -> None:
        if capacity_blocks < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity_blocks
        self.name = name
        self.on_evict = on_evict
        # Optional byte accounting: `nbytes_of` sizes an entry by its
        # block id, and `ledger` (a MemoryManager) is asked for headroom
        # before each insert so cached bytes share the rank's budget.
        self.nbytes_of = nbytes_of
        self.ledger = ledger
        self.bytes_in_use = 0
        self.stats = CacheStats()
        self._entries: "OrderedDict[BlockId, CacheEntry]" = OrderedDict()
        self._pending = 0  # incremental count of in-flight entries

    def _charge(self, block_id: BlockId) -> int:
        if self.nbytes_of is None:
            return 0
        nbytes = self.nbytes_of(block_id)
        if self.ledger is not None:
            self.ledger.cache_headroom(nbytes)
        self.bytes_in_use += nbytes
        return nbytes

    def _release(self, entry: CacheEntry) -> None:
        self.bytes_in_use -= entry.charged
        entry.charged = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._entries

    def lookup(self, block_id: BlockId, touch: bool = True) -> Optional[CacheEntry]:
        entry = self._entries.get(block_id)
        if entry is not None and touch:
            self._entries.move_to_end(block_id)
        return entry

    def record_use(self, block_id: BlockId, hit: bool) -> None:
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        entry = self._entries.get(block_id)
        if entry is not None:
            entry.used = True

    def insert_pending(self, block_id: BlockId, arrival: Event) -> CacheEntry:
        """Register an in-flight fetch; evicts LRU if at capacity."""
        if block_id in self._entries:
            raise SIPError(f"{self.name}: duplicate pending insert of {block_id}")
        self._make_room()
        charged = self._charge(block_id)
        entry = CacheEntry(arrival=arrival, fetch_count=1, charged=charged)
        self._entries[block_id] = entry
        self._pending += 1
        self.stats.insertions += 1
        return entry

    def fulfil(self, block_id: BlockId, block: Block) -> None:
        """Complete a pending fetch (the entry may have been evicted)."""
        entry = self._entries.get(block_id)
        if entry is None:
            return  # evicted while in flight; arrival event still fires
        if entry.pending:
            self._pending -= 1
        entry.block = block
        entry.arrival = None

    def insert_ready(
        self, block_id: BlockId, block: Block, dirty: bool = False
    ) -> CacheEntry:
        """Insert a complete block (server prepare / local store)."""
        entry = self._entries.get(block_id)
        if entry is not None:
            if entry.pending:
                self._pending -= 1
            entry.block = block
            entry.dirty = dirty or entry.dirty
            # A pending entry may have waiters parked on its arrival
            # event; wake them with the block, don't just drop the event.
            arrival, entry.arrival = entry.arrival, None
            if arrival is not None:
                arrival.succeed_if_pending(block)
            self._entries.move_to_end(block_id)
            return entry
        self._make_room()
        charged = self._charge(block_id)
        entry = CacheEntry(block=block, dirty=dirty, charged=charged)
        self._entries[block_id] = entry
        self.stats.insertions += 1
        return entry

    def mark_refetch(self, block_id: BlockId) -> None:
        self.stats.refetches += 1

    def remove(self, block_id: BlockId) -> None:
        entry = self._entries.pop(block_id, None)
        if entry is not None:
            if entry.pending:
                self._pending -= 1
            self._release(entry)

    def clear_clean(self) -> None:
        """Drop every clean, unpinned, non-pending entry (sip_barrier)."""
        for key in list(self._entries):
            entry = self._entries[key]
            if self.evictable(entry):
                self._evict(key, entry)

    def pin(self, block_id: BlockId) -> None:
        self._entries[block_id].pinned += 1

    def unpin(self, block_id: BlockId) -> None:
        entry = self._entries.get(block_id)
        if entry is None:
            raise SIPError(
                f"{self.name}: unpin of {block_id}, which is not cached "
                "(pinned entries must not be removed before their unpin)"
            )
        if entry.pinned <= 0:
            raise SIPError(f"{self.name}: unpin of unpinned {block_id}")
        entry.pinned -= 1

    def evictable(self, entry: CacheEntry) -> bool:
        return entry.pinned == 0 and not entry.pending and not entry.dirty

    def _evict(self, key: BlockId, entry: CacheEntry) -> None:
        """Drop one entry with full accounting (evictions, on_evict)."""
        del self._entries[key]
        self._release(entry)
        self.stats.evictions += 1
        if not entry.used:
            self.stats.evicted_before_use += 1
        if self.on_evict is not None:
            self.on_evict(key, entry)

    def evict_for_pressure(self, need_bytes: int) -> tuple[int, int]:
        """Drop clean LRU entries until ~need_bytes are freed.

        Returns (bytes freed, entries evicted).  Pinned, pending, and
        dirty entries are skipped; freeing less than asked is fine (the
        caller's victim cascade moves on to spilling).
        """
        freed = 0
        count = 0
        for key in list(self._entries):  # LRU order
            if freed >= need_bytes:
                break
            entry = self._entries[key]
            if self.evictable(entry):
                freed += entry.charged
                count += 1
                self._evict(key, entry)
        return freed, count

    def _make_room(self) -> None:
        if len(self._entries) < self.capacity:
            return
        for key in list(self._entries):  # LRU order
            entry = self._entries[key]
            if self.evictable(entry):
                self._evict(key, entry)
                if len(self._entries) < self.capacity:
                    return
        if len(self._entries) >= self.capacity:
            raise SIPError(
                f"{self.name}: cache full of pinned/pending/dirty blocks "
                f"({len(self._entries)} of {self.capacity}); increase the "
                "cache size or reduce prefetch depth"
            )

    def items(self):
        return self._entries.items()

    @property
    def pending_count(self) -> int:
        return self._pending

    def any_pending_arrival(self) -> Optional[Event]:
        """The arrival event of some in-flight fetch (backpressure hook)."""
        for entry in self._entries.values():
            if entry.pending and entry.arrival is not None:
                return entry.arrival
        return None
