"""Unified per-rank memory management.

The paper's SIP treats a rank's memory as one coherent resource: block
stacks sized by the dry run, an LRU cache, and (on I/O servers) a
write-back cache in front of disk (Sections V-B, V-D).  This module
unifies our previously disconnected mechanisms -- :class:`BlockPool`,
:class:`BlockCache`, adopted input blocks -- behind one
:class:`MemoryManager` that charges every live byte against a single
budget and, when ``config.spill`` is enabled, degrades gracefully under
pressure instead of raising:

1. drop clean, unpinned cached replicas (LRU first);
2. spill evictable resident blocks to the rank's scratch disk, in
   priority order ``temp``/``local`` -> ``static`` -> owned
   ``distributed``, transparently faulting them back in on next touch;
3. only when pinned + in-flight blocks alone exceed the budget does
   :class:`OutOfBlockMemory` survive.

Scratch traffic is charged simulated disk time (seek + bytes/bandwidth
on the rank's machine model) and is subject to injected disk faults
(device ``scratch<rank>``), retried with backoff like every other disk
in the system.  With spill disabled (the default) the manager is pure
accounting: allocation, eviction and failure behaviour are bitwise
identical to the historical per-mechanism budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .blocks import Block, BlockId, block_nbytes
from .cache import BlockCache
from .config import SIPError
from .memory import BlockPool, OutOfBlockMemory

__all__ = ["MemoryManager", "MemStats"]

# Spill priority: scratch-friendly scratchpads first, replicated
# statics next (cheap to lose, any worker still has a twin), blocks we
# own on behalf of the world last.
SPILL_ORDER = ("temp", "local", "static", "owned")

_KIND_TO_SPILL_CLASS = {
    "temp": "temp",
    "local": "local",
    "static": "static",
    "distributed": "owned",
}


@dataclass
class MemStats:
    """Observable effect of memory pressure on one rank (or summed)."""

    cascades: int = 0  # allocations that needed the victim cascade
    pressure_evictions: int = 0  # clean cache entries dropped for bytes
    spills: int = 0
    spill_bytes: int = 0
    faults_in: int = 0
    fault_bytes: int = 0
    spill_write_retries: int = 0
    spill_read_retries: int = 0
    peak_bytes: int = 0  # unified resident peak (pool+cache+adopted-spilled)
    peak_spill_bytes: int = 0  # scratch high-water mark
    oom_refusals: int = 0  # cascades that still ended in OutOfBlockMemory
    arena_slab_bytes: int = 0  # mp transport slabs charged to this rank

    def add(self, other: "MemStats") -> None:
        self.cascades += other.cascades
        self.pressure_evictions += other.pressure_evictions
        self.spills += other.spills
        self.spill_bytes += other.spill_bytes
        self.faults_in += other.faults_in
        self.fault_bytes += other.fault_bytes
        self.spill_write_retries += other.spill_write_retries
        self.spill_read_retries += other.spill_read_retries
        self.peak_bytes = max(self.peak_bytes, other.peak_bytes)
        self.peak_spill_bytes = max(self.peak_spill_bytes, other.peak_spill_bytes)
        self.oom_refusals += other.oom_refusals
        self.arena_slab_bytes += other.arena_slab_bytes


class MemoryManager:
    """One budget for everything resident on a rank.

    Composes the rank's :class:`BlockPool` and :class:`BlockCache` and
    tracks adopted blocks (initial inputs scattered outside the pool),
    so ``bytes_in_use`` covers pooled blocks, cached bytes, adopted
    bytes, and (on the mp backend) the rank's transport arena slabs,
    minus whatever is currently spilled out to scratch.

    Two modes:

    * *legacy* (``spill=False``, default): the pool enforces its own
      budget exactly as before; the manager only observes.
    * *unified* (``spill=True``): the pool budget is lifted and the
      manager enforces the total via :meth:`ensure_headroom`'s victim
      cascade.
    """

    def __init__(
        self,
        budget_bytes: float,
        real: bool,
        name: str = "rank",
        *,
        cache_blocks: int = 64,
        nbytes_of: Optional[Callable[[BlockId], int]] = None,
        dtype=np.float64,
        spill: bool = False,
        spill_capacity: Optional[float] = None,
        machine=None,
        faults=None,
        fault_device: Optional[str] = None,
        retry_limit: int = 8,
        retry_backoff: float = 2.0e-3,
        clock: Optional[Callable[[], float]] = None,
        tracer=None,
        rank: int = -1,
        resilience=None,
        on_evict=None,
    ) -> None:
        self.budget_bytes = budget_bytes
        self.real = real
        self.name = name
        self.dtype = np.dtype(dtype)
        self.unified = bool(spill)
        self.spill_capacity = spill_capacity
        self.machine = machine
        self.faults = faults
        self.fault_device = fault_device or f"scratch:{name}"
        self.retry_limit = retry_limit
        self.retry_backoff = retry_backoff
        self.clock = clock
        self.tracer = tracer
        self.rank = rank
        self.resilience = resilience
        self.stats = MemStats()
        # the rank's BlockTransferEngine, when one exists: spill and
        # fault-in traffic is local block movement the engine accounts
        # alongside the wire traffic it owns (set by the rank object)
        self.blockio = None

        pool_budget = float("inf") if self.unified else budget_bytes
        self.pool = BlockPool(pool_budget, real, name=name, dtype=self.dtype)
        self.cache = BlockCache(
            cache_blocks,
            name=f"{name}.cache",
            on_evict=on_evict,
            nbytes_of=nbytes_of,
            ledger=self,
        )

        # resident blocks eligible for spilling: bid -> (block, class)
        self._spillable: dict[BlockId, tuple[Block, str]] = {}
        # spilled-out blocks: bid -> (block, parked data, class)
        self._spill: dict[BlockId, tuple[Block, Optional[np.ndarray], str]] = {}
        # blocks the current instruction is holding; never spilled
        self.pinned: set[BlockId] = set()
        # input blocks adopted from the scatter phase (not pool-owned)
        self._adopted: set[BlockId] = set()
        self.adopted_bytes = 0
        self.spilled_out_bytes = 0
        # mp transport slab arena footprint charged to this rank (the
        # rank's own send-side slabs; inbound mapped views are charged
        # through whatever cache/pool home holds them)
        self.arena_bytes = 0
        # simulated seconds of scratch I/O not yet waited for; the rank's
        # coroutines drain this with a Timeout after each instruction or
        # service message, so pressure costs time instead of being free
        self.time_debt = 0.0
        # demand fetches may spill for cache headroom; speculative
        # prefetch inserts may only drop clean replicas
        self.cache_spill_ok = False

    # -- accounting ------------------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        """Resident bytes charged against the budget right now."""
        return (
            self.pool.stats.bytes_in_use
            + self.cache.bytes_in_use
            + self.adopted_bytes
            + self.arena_bytes
            - self.spilled_out_bytes
        )

    def charge_arena(self, nbytes: int) -> None:
        """Charge a newly created transport arena slab to the budget."""
        self.arena_bytes += nbytes
        self.stats.arena_slab_bytes += nbytes
        self._note_peak()

    def discharge_arena(self, nbytes: int) -> None:
        self.arena_bytes -= nbytes

    @property
    def spilled_blocks(self) -> int:
        return len(self._spill)

    def _note_peak(self) -> None:
        used = self.bytes_in_use
        if used > self.stats.peak_bytes:
            self.stats.peak_bytes = used

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _trace(self, kind: str, bid, nbytes: int) -> None:
        tracer = self.tracer
        if tracer is not None and hasattr(tracer, "record_mem"):
            tracer.record_mem(self._now(), self.rank, kind, str(bid), nbytes)

    # -- block lifecycle -------------------------------------------------
    def allocate(self, shape: tuple[int, ...]) -> Block:
        """Allocate a pool block, making room under the unified budget."""
        if self.unified:
            self.ensure_headroom(block_nbytes(shape, self.dtype))
        block = self.pool.allocate(shape)
        self._note_peak()
        return block

    def register(self, bid: BlockId, block: Block, kind: str) -> None:
        """Mark a resident pool block as spillable (kind = array kind)."""
        cls = _KIND_TO_SPILL_CLASS.get(kind)
        if cls is not None:
            self._spillable[bid] = (block, cls)

    def adopt(self, bid: BlockId, block: Block, kind: str) -> None:
        """Charge an input block scattered outside the pool."""
        self._adopted.add(bid)
        self.adopted_bytes += block.nbytes
        self.register(bid, block, kind)
        self._note_peak()

    def free(self, bid: Optional[BlockId], block: Block) -> None:
        """Release a block (pool-owned or adopted), wherever it lives."""
        if bid is not None:
            self._spillable.pop(bid, None)
            spilled = self._spill.pop(bid, None)
            if spilled is not None:
                self.spilled_out_bytes -= block.nbytes
            if bid in self._adopted:
                self._adopted.discard(bid)
                self.adopted_bytes -= block.nbytes
                block.surrender()
                block.data = None
                return
        self.pool.free(block)

    # -- pressure --------------------------------------------------------
    def cache_headroom(self, nbytes: int) -> None:
        """Headroom check the cache runs before charging an insert."""
        if self.unified:
            self.ensure_headroom(nbytes, allow_spill=self.cache_spill_ok)
        used = self.bytes_in_use + nbytes
        if used > self.stats.peak_bytes:
            self.stats.peak_bytes = used

    def ensure_headroom(self, nbytes: int, allow_spill: bool = True) -> None:
        """Make room for `nbytes` more resident bytes, or raise.

        The victim cascade: clean cache entries first (cheapest -- a
        replica someone else still has), then spill resident blocks to
        scratch.  Raises :class:`OutOfBlockMemory` only when what is
        left is pinned or in flight.
        """
        if not self.unified:
            return
        need = self.bytes_in_use + nbytes - self.budget_bytes
        if need <= 0:
            return
        self.stats.cascades += 1
        freed, count = self.cache.evict_for_pressure(int(need))
        self.stats.pressure_evictions += count
        need = self.bytes_in_use + nbytes - self.budget_bytes
        if need <= 0:
            return
        if allow_spill:
            for cls in SPILL_ORDER:
                for bid in list(self._spillable):
                    block, bid_cls = self._spillable[bid]
                    if bid_cls != cls or bid in self.pinned:
                        continue
                    need -= self.spill(bid)
                    if need <= 0:
                        return
        self.stats.oom_refusals += 1
        raise OutOfBlockMemory(
            f"{self.name}: need {nbytes} more bytes but only "
            f"{max(0, self.budget_bytes - self.bytes_in_use):.0f} of "
            f"{self.budget_bytes:.0f} are free after the victim cascade; "
            "pinned and in-flight blocks alone exceed the budget -- "
            "rerun with more workers or a smaller segment size"
        )

    def spill(self, bid: BlockId) -> int:
        """Park one resident block's buffer on scratch; returns bytes freed."""
        block, cls = self._spillable.pop(bid)
        nbytes = block.nbytes
        if (
            self.spill_capacity is not None
            and self.spilled_out_bytes + nbytes > self.spill_capacity
        ):
            # scratch full: this block stays resident and un-spillable
            # until something faults back in and frees scratch room
            self._spillable[bid] = (block, cls)
            return 0
        self._spill[bid] = (block, block.data, cls)
        block.data = None
        self.spilled_out_bytes += nbytes
        self.stats.spills += 1
        self.stats.spill_bytes += nbytes
        if self.blockio is not None:
            self.blockio.note_spill(nbytes)
        if self.spilled_out_bytes > self.stats.peak_spill_bytes:
            self.stats.peak_spill_bytes = self.spilled_out_bytes
        self._scratch_io("write", nbytes)
        self._trace("spill", bid, nbytes)
        return nbytes

    def touch(self, bid: BlockId) -> None:
        """Fault a block back in if it was spilled (no-op otherwise)."""
        if not self._spill:
            return
        entry = self._spill.get(bid)
        if entry is None:
            return
        block, data, cls = entry
        nbytes = block.nbytes
        del self._spill[bid]
        self.spilled_out_bytes -= nbytes
        # faulting in may itself need to spill something else; the
        # returning block cannot be re-victimised (not registered yet)
        self.ensure_headroom(0)
        block.data = data
        self._spillable[bid] = (block, cls)
        self.stats.faults_in += 1
        self.stats.fault_bytes += nbytes
        if self.blockio is not None:
            self.blockio.note_fault_in(nbytes)
        self._scratch_io("read", nbytes)
        self._trace("fault-in", bid, nbytes)
        self._note_peak()

    def pin_instr(self, bid: BlockId) -> None:
        if self.unified:
            self.pinned.add(bid)

    def clear_instr_pins(self) -> None:
        if self.pinned:
            self.pinned.clear()

    # -- scratch device model -------------------------------------------
    def _scratch_io(self, kind: str, nbytes: int) -> None:
        machine = self.machine
        if machine is None:
            return
        duration = machine.disk_seek + nbytes / machine.disk_bandwidth
        attempts = 0
        while (
            self.faults is not None
            and self.faults.disk_verdict(kind, self.fault_device, self._now())
        ):
            attempts += 1
            self.time_debt += duration + self.retry_backoff * attempts
            if kind == "write":
                self.stats.spill_write_retries += 1
                if self.resilience is not None:
                    self.resilience.writeback_retries += 1
            else:
                self.stats.spill_read_retries += 1
                if self.resilience is not None:
                    self.resilience.disk_read_retries += 1
            if attempts >= self.retry_limit:
                raise SIPError(
                    f"{self.name}: scratch {kind} failed "
                    f"{attempts} times; giving up"
                )
        self.time_debt += duration

    def take_time_debt(self) -> float:
        debt = self.time_debt
        self.time_debt = 0.0
        return debt

    # -- post-run --------------------------------------------------------
    def restore_all(self) -> None:
        """Fault every spilled block back in (result-gathering path)."""
        for bid, (block, data, cls) in list(self._spill.items()):
            block.data = data
            self.spilled_out_bytes -= block.nbytes
            self._spillable[bid] = (block, cls)
        self._spill.clear()
