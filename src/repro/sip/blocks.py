"""Blocks (super numbers) and segment arithmetic.

Each dimension of a SIAL array is partitioned into *segments*; the
cartesian product of segments defines the *blocks* the runtime moves
and computes on (paper, Section III).  This module resolves the
compiled program's index descriptor table against concrete symbolic
constant values and segment-size configuration, producing a
:class:`ResolvedIndexTable` that everything else (placement, memory
pools, the interpreter, the dry run) consults.

Segment sizes are a *runtime* parameter -- they never appear in SIAL
source -- and the last segment of a dimension may be ragged.
Subindices split every segment of their super index into a configured
number of subsegments (paper, Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, prod
from typing import Optional, Sequence

import numpy as np

from ..sial.bytecode import ArrayDesc, CompiledProgram, IndexDesc, evaluate_rpn

__all__ = [
    "Segment",
    "ResolvedIndex",
    "ResolvedIndexTable",
    "BlockId",
    "Block",
    "CowStats",
    "OperandView",
    "block_shape",
    "block_nbytes",
]

DTYPE_BYTES = 8  # default: double precision, as in the paper


@dataclass(frozen=True)
class Segment:
    """One segment of an index range: element offsets [start, stop)."""

    start: int
    stop: int

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ResolvedIndex:
    """An index descriptor with concrete range and segmentation.

    For *segment* indices, ``segments[s-1]`` gives the element offsets
    (0-based, relative to the dimension start) covered by segment
    number ``s``; loops iterate ``range(1, nsegments+1)``.  For
    *simple* indices, loops iterate the raw values ``lo..hi`` and
    ``segments`` is empty.  For *subindices*, the table holds the
    subsegments of the whole range; subsegment numbers are global, and
    the subsegments of super-segment ``s`` are
    ``(s-1)*per_segment + 1 .. s*per_segment``.
    """

    name: str
    kind: str
    lo: int
    hi: int
    segments: tuple[Segment, ...]
    super_id: Optional[int] = None
    per_segment: int = 1  # subsegments per super segment (subindices only)

    @property
    def n_elements(self) -> int:
        return self.hi - self.lo + 1

    @property
    def is_simple(self) -> bool:
        return self.kind == "simple"

    @property
    def is_subindex(self) -> bool:
        return self.super_id is not None

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def values(self) -> range:
        """The values a loop over this index visits."""
        if self.is_simple:
            return range(self.lo, self.hi + 1)
        return range(1, len(self.segments) + 1)

    def segment(self, number: int) -> Segment:
        if not 1 <= number <= len(self.segments):
            raise IndexError(
                f"segment {number} out of range 1..{len(self.segments)} "
                f"for index {self.name!r}"
            )
        return self.segments[number - 1]

    def subvalues_of(self, super_segment: int) -> range:
        """Subsegment numbers inside a given super-segment (do ii in i)."""
        if not self.is_subindex:
            raise ValueError(f"{self.name!r} is not a subindex")
        base = (super_segment - 1) * self.per_segment
        return range(base + 1, base + self.per_segment + 1)

    def super_segment_of(self, sub_number: int) -> int:
        """The super-segment containing a given subsegment number."""
        if not self.is_subindex:
            raise ValueError(f"{self.name!r} is not a subindex")
        return (sub_number - 1) // self.per_segment + 1


def _partition(total: int, seg: int) -> tuple[Segment, ...]:
    """Split [0, total) into chunks of `seg` (last one possibly ragged)."""
    if seg <= 0:
        raise ValueError(f"segment size must be positive, got {seg}")
    return tuple(
        Segment(start, min(start + seg, total)) for start in range(0, total, seg)
    )


class ResolvedIndexTable:
    """All index descriptors resolved against runtime parameters."""

    def __init__(
        self,
        program: CompiledProgram,
        symbolics: dict[str, float],
        segment_size: int,
        segment_sizes: Optional[dict[str, int]] = None,
        subsegments_per_segment: int = 2,
    ) -> None:
        self.program = program
        sym_values = _symbolic_vector(program, symbolics)
        self.symbolic_values = sym_values
        segment_sizes = segment_sizes or {}
        resolved: list[ResolvedIndex] = []
        for desc in program.index_table:
            lo = int(evaluate_rpn(desc.lo_rpn, symbolics=sym_values))
            hi = int(evaluate_rpn(desc.hi_rpn, symbolics=sym_values))
            if hi < lo:
                raise ValueError(
                    f"index {desc.name!r} has empty range {lo}..{hi}"
                )
            if desc.kind == "simple":
                resolved.append(
                    ResolvedIndex(desc.name, desc.kind, lo, hi, segments=())
                )
                continue
            total = hi - lo + 1
            seg = segment_sizes.get(desc.kind, segment_size)
            if desc.super_id is not None:
                sup = resolved[desc.super_id]
                per = max(1, min(subsegments_per_segment, seg))
                # subsegment size derives from the *nominal* segment size
                # (the paper's n = seg(i)/seg(ii) is one runtime parameter),
                # so only trailing subsegments of a ragged segment shrink
                nominal = max((s.length for s in sup.segments), default=0)
                sub_len = max(1, ceil(nominal / per))
                subsegments: list[Segment] = []
                for parent in sup.segments:
                    for k in range(per):
                        start = min(parent.start + k * sub_len, parent.stop)
                        stop = min(start + sub_len, parent.stop)
                        subsegments.append(Segment(start, stop))
                resolved.append(
                    ResolvedIndex(
                        desc.name,
                        desc.kind,
                        lo,
                        hi,
                        segments=tuple(subsegments),
                        super_id=desc.super_id,
                        per_segment=per,
                    )
                )
            else:
                resolved.append(
                    ResolvedIndex(
                        desc.name, desc.kind, lo, hi, segments=_partition(total, seg)
                    )
                )
        self.indices: list[ResolvedIndex] = resolved

    def __getitem__(self, index_id: int) -> ResolvedIndex:
        return self.indices[index_id]

    def array_block_space(self, desc: ArrayDesc) -> list[range]:
        """Per-dimension block-number ranges of an array."""
        return [range(1, self[i].n_segments + 1) for i in desc.index_ids]

    def array_shape(self, desc: ArrayDesc) -> tuple[int, ...]:
        """Full element shape of an array."""
        return tuple(self[i].n_elements for i in desc.index_ids)


def _symbolic_vector(
    program: CompiledProgram, symbolics: dict[str, float]
) -> list[float]:
    values: list[float] = []
    lowered = {k.lower(): v for k, v in symbolics.items()}
    missing = []
    for name in program.symbolic_table:
        if name.lower() not in lowered:
            missing.append(name)
        else:
            values.append(float(lowered[name.lower()]))
    if missing:
        raise ValueError(
            f"missing values for symbolic constants: {', '.join(missing)}"
        )
    return values


# --------------------------------------------------------------------------
# Blocks
# --------------------------------------------------------------------------
class BlockId:
    """Identity of one block: which array, which block coordinates.

    Block ids key every hot dict in the runtime (caches, placements,
    owned/local block maps), so the hash is computed once up front.
    """

    __slots__ = ("array_id", "coords", "_hash")

    def __init__(self, array_id: int, coords: tuple[int, ...]) -> None:
        self.array_id = array_id
        self.coords = coords
        self._hash = hash((array_id, coords))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BlockId):
            return self.array_id == other.array_id and self.coords == other.coords
        return NotImplemented

    def __reduce__(self):
        # __slots__ classes need explicit pickle support; the hash is
        # recomputed on the receiving side by __init__.
        return (BlockId, (self.array_id, self.coords))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockId(array_id={self.array_id}, coords={self.coords})"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"B[{self.array_id}]{self.coords}"


@dataclass
class CowStats:
    """Observable effect of copy-on-write block transport."""

    sends_shared: int = 0
    bytes_not_copied: int = 0
    cow_copies: int = 0
    cow_bytes_copied: int = 0


class Block:
    """A block of double-precision data (or just its shape in model mode).

    Blocks support zero-copy snapshots: :meth:`share` returns a twin
    referencing the same ndarray, and the twins track each other through
    a shared reference-count cell.  Any holder that is about to write in
    place calls :meth:`ensure_writable`, which detaches it (copying the
    buffer only if another holder remains) -- so eager deep copies on
    every send/cache insert become copies on first write only.
    """

    __slots__ = ("shape", "data", "dtype", "_shared")

    def __init__(
        self,
        shape: tuple[int, ...],
        data: Optional[np.ndarray] = None,
        dtype=None,
    ):
        self.shape = shape
        self.data = data
        # element type used for byte accounting when no data is attached
        # (model mode, spilled blocks); real blocks defer to data.dtype
        self.dtype = data.dtype if data is not None else dtype
        self._shared = None  # refcount cell shared by all twins, or None

    @property
    def nbytes(self) -> int:
        if self.data is not None:
            return self.data.nbytes
        return block_nbytes(self.shape, self.dtype)

    def copy(self) -> "Block":
        data = None if self.data is None else self.data.copy()
        return Block(self.shape, data, dtype=self.dtype)

    @classmethod
    def mapped(cls, shape: tuple[int, ...], data: np.ndarray) -> "Block":
        """A block over borrowed, immutable storage.

        Used for views mapped directly over transport arena slots:
        reads are zero-copy, the first in-place write copies out via
        :meth:`ensure_writable` (the cell starts with a permanent
        phantom holder, so the no-copy detach branch can never hand
        the borrowed buffer to a writer), and :meth:`surrender` never
        reports the buffer recyclable, so the block pool cannot adopt
        memory it does not own.
        """
        block = cls(shape, data)
        block._shared = [2]
        return block

    def share(self) -> "Block":
        """A zero-copy snapshot sharing this block's buffer."""
        if self.data is None:
            return Block(self.shape, None, dtype=self.dtype)
        cell = self._shared
        if cell is None:
            cell = self._shared = [1]
        cell[0] += 1
        twin = Block(self.shape, self.data)
        twin._shared = cell
        return twin

    def ensure_writable(self) -> int:
        """Detach from copy-on-write sharing before an in-place write.

        Returns the number of bytes copied (0 when the buffer was
        already exclusive).
        """
        cell = self._shared
        if cell is None:
            return 0
        self._shared = None
        cell[0] -= 1
        if cell[0] <= 0 or self.data is None:
            return 0
        self.data = self.data.copy()
        return self.data.nbytes

    def surrender(self) -> bool:
        """Drop this block's claim on its buffer (pool free path).

        True means no twin still references the buffer, so it is safe
        to recycle.
        """
        cell = self._shared
        if cell is None:
            return True
        self._shared = None
        cell[0] -= 1
        return cell[0] <= 0

    def __getstate__(self):
        # The copy-on-write cell is process-local bookkeeping: a twin on
        # the other side of a pipe cannot share our buffer, so it
        # crosses as a plain exclusive block.
        return (self.shape, self.data, self.dtype)

    def __setstate__(self, state):
        self.shape, self.data, self.dtype = state
        self._shared = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "real" if self.data is not None else "model"
        return f"<Block {self.shape} {mode}>"


def block_nbytes(shape: Sequence[int], dtype=None) -> int:
    itemsize = DTYPE_BYTES if dtype is None else np.dtype(dtype).itemsize
    return prod(shape, start=1) * itemsize


def block_shape(
    table: ResolvedIndexTable, desc: ArrayDesc, coords: tuple[int, ...]
) -> tuple[int, ...]:
    """Element shape of the block at the given coordinates."""
    return tuple(
        table[i].segment(c).length for i, c in zip(desc.index_ids, coords)
    )


@dataclass(frozen=True)
class OperandView:
    """A resolved block operand: a block plus an optional sub-slice.

    ``index_ids`` records which index *variable* addresses each axis --
    the kernels use them to align permutations and contractions.
    ``slices`` is None for a whole-block operand, else per-axis element
    slices within the block (the subindex slice/insertion feature).
    ``element_ranges`` gives, per axis, the global element offsets the
    view covers (used by on-demand integral computation).
    """

    block_id: BlockId
    index_ids: tuple[int, ...]
    shape: tuple[int, ...]
    slices: Optional[tuple[slice, ...]]
    element_ranges: tuple[tuple[int, int], ...]

    @property
    def nbytes(self) -> int:
        return block_nbytes(self.shape)
