"""Pre-decoded instruction stream: the interpreter's fast path.

The compiled program stores operands as :class:`BlockOperand` records
that the worker used to re-parse on every execution -- looking up the
array descriptor, walking the index table, and rebuilding the resolved
coordinates/slices each time an instruction ran.  ``decode_program``
does that structural work **once at program load**:

* every instruction becomes a :class:`DecodedInstr` (``__slots__``,
  positionally identical ``args``) whose block operands are replaced by
  :class:`DecodedOperand` objects with the array descriptor and
  per-dimension index metadata pre-resolved;
* identical operands (same array, same index variables) share one
  decoder, so a memo keyed by the current index values turns repeat
  resolutions into a single dict probe -- across *all* workers, since
  the decoded stream lives on the shared runtime;
* the worker builds flat per-pc handler tables from the decoded ops, so
  the inner loop does no per-step dict/``getattr`` dispatch.

Program counters and argument layout are preserved exactly, so the
master, profiler and tracer keep working off the same pcs.  Resolution
raises the very same :class:`SIPError` messages the interpreter always
raised (the error-path tests match them verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sial.bytecode import ArrayDesc, BlockOperand, CompiledProgram
from .blocks import BlockId, ResolvedIndexTable
from .config import SIPError

__all__ = ["ResolvedOperand", "DecodedOperand", "DecodedInstr", "DecodedProgram", "decode_program"]


@dataclass(frozen=True)
class ResolvedOperand:
    """A block operand resolved against the current index values."""

    block_id: BlockId
    kind: str
    index_ids: tuple[int, ...]
    shape: tuple[int, ...]
    slices: Optional[tuple[slice, ...]]
    element_ranges: tuple[tuple[int, int], ...]


class DecodedOperand:
    """A block operand with its descriptor lookups done at load time."""

    __slots__ = ("array_id", "index_ids", "kind", "desc", "table", "dims", "_memo")

    def __init__(
        self, op: BlockOperand, desc: ArrayDesc, table: ResolvedIndexTable
    ) -> None:
        self.array_id = op.array_id
        self.index_ids = op.index_ids
        self.kind = desc.kind
        self.desc = desc
        self.table = table
        # per dimension: (uid, resolved index used, dimension's resolved
        # index, True when a subindex slices a full-segment dimension)
        self.dims = tuple(
            (uid, table[uid], table[did], table[uid].is_subindex and not table[did].is_subindex)
            for did, uid in zip(desc.index_ids, op.index_ids)
        )
        self._memo: dict[tuple, ResolvedOperand] = {}

    def resolve(self, index_values: dict[int, int], memo: bool = True) -> ResolvedOperand:
        key = tuple(index_values.get(uid) for uid, _, _, _ in self.dims)
        if memo:
            hit = self._memo.get(key)
            if hit is not None:
                return hit
        r = self._resolve(key)
        if memo:
            self._memo[key] = r
        return r

    def _resolve(self, values: tuple) -> ResolvedOperand:
        desc = self.desc
        coords: list[int] = []
        slices: list[slice] = []
        shape: list[int] = []
        eranges: list[tuple[int, int]] = []
        any_slice = False
        for (uid, ri_u, ri_d, sub_on_full), val in zip(self.dims, values):
            if val is None:
                raise SIPError(
                    f"index {ri_u.name!r} has no value here "
                    f"(array {desc.name!r})"
                )
            if sub_on_full:
                # a subindex used on a full-segment dimension slices the
                # block; any subindex of a same-kind, same-partition
                # index works (the analyzer already checked the kind)
                parent = ri_u.super_segment_of(val)
                sub = ri_u.segment(val)
                if not 1 <= parent <= ri_d.n_segments:
                    raise SIPError(
                        f"subindex {ri_u.name!r} segment {val} falls outside "
                        f"dimension {ri_d.name!r} of {desc.name!r}"
                    )
                pseg = ri_d.segment(parent)
                if sub.start < pseg.start or sub.stop > pseg.stop:
                    raise SIPError(
                        f"subindex {ri_u.name!r} and dimension "
                        f"{ri_d.name!r} of {desc.name!r} have "
                        "incompatible segmentations"
                    )
                coords.append(parent)
                slices.append(slice(sub.start - pseg.start, sub.stop - pseg.start))
                shape.append(sub.length)
                eranges.append((sub.start, sub.stop))
                any_slice = True
            else:
                nd = ri_d.n_segments
                if not 1 <= val <= nd:
                    raise SIPError(
                        f"segment {val} of index {ri_u.name!r} is outside the "
                        f"declared range of dimension {ri_d.name!r} of "
                        f"array {desc.name!r} (1..{nd})"
                    )
                seg = ri_d.segment(val)
                used_seg = ri_u.segment(val) if not ri_u.is_simple else seg
                if used_seg.length != seg.length:
                    raise SIPError(
                        f"index {ri_u.name!r} and dimension {ri_d.name!r} "
                        f"of {desc.name!r} have incompatible segmentations"
                    )
                coords.append(val)
                slices.append(slice(0, seg.length))
                shape.append(seg.length)
                eranges.append((seg.start, seg.stop))
        return ResolvedOperand(
            block_id=BlockId(self.array_id, tuple(coords)),
            kind=desc.kind,
            index_ids=self.index_ids,
            shape=tuple(shape),
            slices=tuple(slices) if any_slice else None,
            element_ranges=tuple(eranges),
        )


class DecodedInstr:
    """One instruction with block operands replaced by decoders."""

    __slots__ = ("op", "args", "location")

    def __init__(self, op: str, args: tuple, location) -> None:
        self.op = op
        self.args = args
        self.location = location


class DecodedProgram:
    """The decoded instruction stream plus its operand decoders."""

    __slots__ = ("instructions", "operands")

    def __init__(self, instructions: list[DecodedInstr], operands: dict) -> None:
        self.instructions = instructions
        self.operands = operands


def decode_program(
    program: CompiledProgram, table: ResolvedIndexTable
) -> DecodedProgram:
    """Decode every instruction once; pcs and arg layout are preserved."""
    operands: dict[BlockOperand, DecodedOperand] = {}

    def decode_operand(op: BlockOperand) -> DecodedOperand:
        d = operands.get(op)
        if d is None:
            d = operands[op] = DecodedOperand(
                op, program.array_table[op.array_id], table
            )
        return d

    def walk(arg):
        if isinstance(arg, BlockOperand):
            return decode_operand(arg)
        if isinstance(arg, tuple):
            walked = tuple(walk(a) for a in arg)
            return walked if any(w is not o for w, o in zip(walked, arg)) else arg
        if isinstance(arg, list):
            return [walk(a) for a in arg]
        return arg

    instructions = [
        DecodedInstr(instr.op, walk(instr.args), instr.location)
        for instr in program.instructions
    ]
    return DecodedProgram(instructions, operands)
