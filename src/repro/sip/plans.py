"""Compiled kernel plans: contraction lowering cached per signature.

The paper's super instructions get their speed from tuned Fortran
kernels built around DGEMM; our ``RealBackend`` previously rebuilt an
einsum subscript string and re-ran ``np.einsum``'s path search on
*every* contraction call.  Block programs execute the same handful of
contraction signatures thousands of times (once per block per sweep),
so this module compiles each distinct signature **once** and caches the
result:

* a :class:`_GemmPlan` when the contraction is a clean GEMM -- both
  operands are transposed to a canonical layout, the kept/contracted
  axes are folded, and a single ``np.matmul`` runs into a reusable
  scratch buffer (``out=``); this mirrors exactly how numpy's own
  optimized einsum lowers a two-operand contraction, so the results are
  bit-identical to the legacy path;
* a :class:`_EinsumPlan` holding a precomputed ``np.einsum_path``
  otherwise (repeated indices, batch dimensions, pure reductions,
  outer products), which skips the per-call path search while executing
  the identical contraction sequence.

The cache key is ``(opcode, index-id signature, operand shapes)``; the
same cache also memoizes the ``_perm`` axis permutations used by the
transpose-style kernels.  One :class:`KernelPlanCache` is shared by all
workers of a run (plans are immutable apart from the scratch buffer,
and the simulator interleaves workers on a single thread).
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

from .config import SIPError

__all__ = ["PlanCacheStats", "KernelPlanCache", "einsum_subscripts", "perm"]


def perm(dst_ids: tuple[int, ...], src_ids: tuple[int, ...]) -> tuple[int, ...]:
    """Axes permutation mapping src layout onto dst layout.

    Handles repeated index variables (e.g. a diagonal block ``D(M, M)``)
    by matching each destination axis to the first unused source axis
    with the same id.
    """
    used = [False] * len(src_ids)
    out = []
    for ix in dst_ids:
        for pos, sid in enumerate(src_ids):
            if sid == ix and not used[pos]:
                used[pos] = True
                out.append(pos)
                break
        else:
            raise SIPError(f"operand index mismatch: {dst_ids} vs {src_ids}")
    return tuple(out)


def einsum_subscripts(
    a_ids: tuple[int, ...], b_ids: tuple[int, ...], out_ids: tuple[int, ...]
) -> str:
    """The einsum spec for a contraction, lettered deterministically."""
    letters: dict[int, str] = {}
    pool = iter(string.ascii_lowercase)
    for ix in (*a_ids, *b_ids, *out_ids):
        if ix not in letters:
            letters[ix] = next(pool)
    a_sub = "".join(letters[i] for i in a_ids)
    b_sub = "".join(letters[i] for i in b_ids)
    out_sub = "".join(letters[i] for i in out_ids)
    return f"{a_sub},{b_sub}->{out_sub}"


@dataclass
class PlanCacheStats:
    """Observable effect of the plan cache (surfaced in RunProfile)."""

    hits: int = 0
    misses: int = 0
    gemm_plans: int = 0
    einsum_plans: int = 0
    perm_hits: int = 0
    perm_misses: int = 0

    @property
    def hit_rate(self) -> float:
        attempts = self.hits + self.misses
        return self.hits / attempts if attempts else 0.0


def _apply(dst: np.ndarray, res: np.ndarray, op: str) -> None:
    if op == "=":
        dst[...] = res
    elif op == "+=":
        dst[...] += res
    else:
        dst[...] -= res


class _GemmPlan:
    """Fold a contraction into one ``matmul`` through a scratch buffer.

    The fold order matches numpy's own GEMM lowering of a two-operand
    einsum *exactly*.  Subtlety: numpy's optimized-einsum executor pops
    operands off its work list in reverse, so a two-operand einsum
    actually contracts ``b, a`` -- ``b``'s kept axes become the GEMM
    rows (M), the contracted axes fold in b-order (K), and ``a``'s kept
    axes become the columns (N).  We mirror that layout so the BLAS call
    sums in the same order and results are bitwise identical to
    ``np.einsum(..., optimize=True)``.
    """

    __slots__ = ("b_perm", "b_fold", "a_perm", "a_fold", "res_shape", "out_perm", "scratch")

    def __init__(
        self,
        b_perm: tuple[int, ...],
        b_fold: tuple[int, int],
        a_perm: tuple[int, ...],
        a_fold: tuple[int, int],
        res_shape: tuple[int, ...],
        out_perm: tuple[int, ...],
    ) -> None:
        self.b_perm = b_perm
        self.b_fold = b_fold
        self.a_perm = a_perm
        self.a_fold = a_fold
        self.res_shape = res_shape
        self.out_perm = out_perm
        self.scratch = np.empty((b_fold[0], a_fold[1]), dtype=np.float64)

    def execute(self, a: np.ndarray, b: np.ndarray, dst: np.ndarray, op: str) -> None:
        lhs = b.transpose(self.b_perm).reshape(self.b_fold)
        rhs = a.transpose(self.a_perm).reshape(self.a_fold)
        np.matmul(lhs, rhs, out=self.scratch)
        _apply(dst, self.scratch.reshape(self.res_shape).transpose(self.out_perm), op)


class _EinsumPlan:
    """Fallback: the naive einsum with its contraction path precomputed."""

    __slots__ = ("subscripts", "path")

    def __init__(self, subscripts: str, a_shape: tuple[int, ...], b_shape: tuple[int, ...]):
        self.subscripts = subscripts
        self.path = np.einsum_path(
            subscripts,
            np.empty(a_shape, dtype=np.float64),
            np.empty(b_shape, dtype=np.float64),
            optimize=True,
        )[0]

    def execute(self, a: np.ndarray, b: np.ndarray, dst: np.ndarray, op: str) -> None:
        _apply(dst, np.einsum(self.subscripts, a, b, optimize=self.path), op)


def _compile_contraction(
    a_ids: tuple[int, ...],
    a_shape: tuple[int, ...],
    b_ids: tuple[int, ...],
    b_shape: tuple[int, ...],
    out_ids: tuple[int, ...],
    out_shape: tuple[int, ...],
):
    """Lower one contraction signature to a GEMM plan, or bail to einsum.

    GEMM applies only to the clean case: no repeated index within an
    operand (diagonals), no batch index (present in a, b, and out), no
    pure reductions (an index of one operand absent from both the other
    operand and the output), and a non-empty contracted set.  Everything
    else runs through the cached einsum path, which is what the legacy
    backend executed anyway.
    """
    subscripts = einsum_subscripts(a_ids, b_ids, out_ids)
    set_a, set_b, set_out = set(a_ids), set(b_ids), set(out_ids)
    clean = (
        len(set_a) == len(a_ids)
        and len(set_b) == len(b_ids)
        and len(set_out) == len(out_ids)
        and not (set_a & set_b & set_out)  # batch dims
        and all(ix in set_out or ix in set_b for ix in a_ids)
        and all(ix in set_out or ix in set_a for ix in b_ids)
        and all(ix in set_a or ix in set_b for ix in out_ids)
    )
    if not clean:
        return _EinsumPlan(subscripts, a_shape, b_shape)
    # numpy's path executor pops operands in reverse, so the pair
    # contraction runs as "b, a": b's kept axes are the GEMM rows (M),
    # the contracted axes fold in b-order (K), a's kept axes are the
    # columns (N).  Mirror that so BLAS sums in the identical order.
    m_ids = tuple(ix for ix in b_ids if ix in set_out)
    k_ids = tuple(ix for ix in b_ids if ix in set_a)
    n_ids = tuple(ix for ix in a_ids if ix in set_out)
    if not k_ids:
        return _EinsumPlan(subscripts, a_shape, b_shape)  # outer product
    a_pos = {ix: p for p, ix in enumerate(a_ids)}
    b_pos = {ix: p for p, ix in enumerate(b_ids)}
    b_perm = tuple(b_pos[ix] for ix in (*m_ids, *k_ids))
    a_perm = tuple(a_pos[ix] for ix in (*k_ids, *n_ids))
    m_shape = tuple(b_shape[b_pos[ix]] for ix in m_ids)
    k_shape = tuple(b_shape[b_pos[ix]] for ix in k_ids)
    n_shape = tuple(a_shape[a_pos[ix]] for ix in n_ids)
    if tuple(a_shape[a_pos[ix]] for ix in k_ids) != k_shape:
        raise SIPError(
            f"contraction dimension mismatch between operands "
            f"{a_shape}/{a_ids} and {b_shape}/{b_ids}"
        )
    m = int(np.prod(m_shape, dtype=np.int64)) if m_shape else 1
    k = int(np.prod(k_shape, dtype=np.int64)) if k_shape else 1
    n = int(np.prod(n_shape, dtype=np.int64)) if n_shape else 1
    res_ids = (*m_ids, *n_ids)
    out_perm = perm(out_ids, res_ids)
    return _GemmPlan(b_perm, (m, k), a_perm, (k, n), m_shape + n_shape, out_perm)


class KernelPlanCache:
    """Per-run cache of compiled kernel plans and axis permutations."""

    def __init__(self) -> None:
        self.stats = PlanCacheStats()
        self._contractions: dict[tuple, object] = {}
        self._perms: dict[tuple, tuple[int, ...]] = {}

    def contraction(
        self,
        a_ids: tuple[int, ...],
        a_shape: tuple[int, ...],
        b_ids: tuple[int, ...],
        b_shape: tuple[int, ...],
        out_ids: tuple[int, ...],
        out_shape: tuple[int, ...],
    ):
        key = ("contract", a_ids, a_shape, b_ids, b_shape, out_ids, out_shape)
        plan = self._contractions.get(key)
        if plan is not None:
            self.stats.hits += 1
            return plan
        self.stats.misses += 1
        plan = _compile_contraction(a_ids, a_shape, b_ids, b_shape, out_ids, out_shape)
        if isinstance(plan, _GemmPlan):
            self.stats.gemm_plans += 1
        else:
            self.stats.einsum_plans += 1
        self._contractions[key] = plan
        return plan

    def perm(self, dst_ids: tuple[int, ...], src_ids: tuple[int, ...]) -> tuple[int, ...]:
        key = (dst_ids, src_ids)
        cached = self._perms.get(key)
        if cached is not None:
            self.stats.perm_hits += 1
            return cached
        self.stats.perm_misses += 1
        cached = self._perms[key] = perm(dst_ids, src_ids)
        return cached
