"""Shared runtime state of one SIP execution.

The :class:`SharedRuntime` is built once per run from the compiled
program, the symbolic-constant values, and the :class:`SIPConfig`.  It
holds everything that is *logically global*: the resolved index table,
block placements, the cost model and backend factory, barrier objects,
and the external store used for serialization/checkpointing.  Rank
processes (master, workers, I/O servers) each hold a reference; all
*data* stays in per-rank structures, and simulated communication is the
only way data moves between ranks during execution.

Input scatter and output gather happen outside simulated time (they
model the application's file I/O, which the paper's measurements also
exclude).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..costmodel import CostModel
from ..sial.bytecode import ArrayDesc, CompiledProgram, evaluate_rpn
from ..simmpi import Simulator, World
from .backend import make_backend
from .blocks import Block, BlockId, CowStats, ResolvedIndexTable, block_shape
from .config import SIPConfig, SIPError
from .decode import decode_program
from .distributed import Placement, ReplicaMap
from .plans import KernelPlanCache
from .registry import GLOBAL_REGISTRY, SuperInstructionRegistry
from .sanitizer import Sanitizer

__all__ = ["SharedRuntime"]

#: RPN item tags whose value is fixed for a whole run
_CONST_TAGS = {"num", "symbolic", "+", "-", "*", "/", "neg"}


def _constant_rpns(decoded, symbolic_values) -> dict[int, float]:
    """id(rpn) -> value for every constant RPN in the decoded stream."""
    out: dict[int, float] = {}

    def walk(arg) -> None:
        if not isinstance(arg, tuple) or not arg:
            return
        if all(
            isinstance(item, tuple) and item and item[0] in _CONST_TAGS
            for item in arg
        ):
            try:
                out[id(arg)] = evaluate_rpn(arg, symbolics=symbolic_values)
            except (ValueError, ZeroDivisionError, IndexError):
                pass  # not actually a well-formed RPN; evaluate at runtime
            return
        for item in arg:
            walk(item)

    for instr in decoded.instructions:
        walk(instr.args)
    return out


class SharedRuntime:
    def __init__(
        self,
        program: CompiledProgram,
        config: SIPConfig,
        symbolics: dict[str, float],
        sim: Simulator,
        world: World,
    ) -> None:
        self.program = program
        self.config = config
        self.sim = sim
        self.world = world
        self.table = ResolvedIndexTable(
            program,
            symbolics,
            segment_size=config.segment_size,
            segment_sizes=config.segment_sizes,
            subsegments_per_segment=config.subsegments_per_segment,
        )
        self.cost = CostModel(config.machine)
        self.dtype = np.dtype(config.dtype)
        self.registry: SuperInstructionRegistry = GLOBAL_REGISTRY.merged_with(
            config.superinstructions
        )
        self.external_store: dict[str, Any] = config.external_store
        # shared block-access recorder; None when sanitize mode is off
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(program) if config.sanitize else None
        )

        # execution fast path: the pre-decoded instruction stream is
        # always built (it changes nothing observable); the kernel plan
        # cache and zero-copy transport follow config.fastpath
        self.decoded = decode_program(program, self.table)
        # memoize RPN programs that only read numbers and symbolic
        # constants: their value is fixed for the whole run, so workers
        # skip the stack evaluation (keyed by identity -- the compile-time
        # dedup pass makes equal RPNs share one tuple object)
        self.rpn_consts: dict[int, float] = _constant_rpns(
            self.decoded, self.table.symbolic_values
        )
        self.plan_cache: Optional[KernelPlanCache] = (
            KernelPlanCache() if (config.fastpath and self.real) else None
        )
        self.cow = CowStats()
        self.cow_enabled = config.fastpath
        self._owner_rank_cache: dict[BlockId, int] = {}
        self._server_rank_cache: dict[BlockId, int] = {}

        # recent cached replicas of remote blocks; pure scheduling hint
        # read by the locality policy, never consulted for correctness
        self.replicas = ReplicaMap(config.affinity_replica_history)

        # placements for distributed and served arrays
        self.placements: dict[int, Placement] = {}
        self.served_placements: dict[int, Placement] = {}
        for array_id, desc in enumerate(program.array_table):
            if desc.kind == "distributed":
                self.placements[array_id] = Placement(
                    self.table, array_id, config.workers
                )
            elif desc.kind == "served":
                if config.io_servers == 0:
                    raise SIPError(
                        f"program declares served array {desc.name!r} but "
                        "config.io_servers is 0"
                    )
                self.served_placements[array_id] = Placement(
                    self.table, array_id, config.io_servers
                )

        # Barriers come from the world (transport) so the multiprocess
        # backend can substitute a message-based implementation.
        self.worker_barrier = world.barrier(
            config.worker_ranks, name="sip_barrier"
        )
        self.server_barrier_obj = world.barrier(
            config.worker_ranks, name="server_barrier"
        )

    # -- helpers ------------------------------------------------------------
    def array_desc(self, array_id: int) -> ArrayDesc:
        return self.program.array_table[array_id]

    def array_id_by_name(self, name: str) -> int:
        return self.program.array_id(name)

    def owner_rank(self, block_id: BlockId) -> int:
        """World rank of the worker owning a distributed block."""
        rank = self._owner_rank_cache.get(block_id)
        if rank is None:
            idx = self.placements[block_id.array_id].owner_index(block_id.coords)
            rank = self._owner_rank_cache[block_id] = self.config.worker_rank(idx)
        return rank

    def server_rank_for(self, block_id: BlockId) -> int:
        rank = self._server_rank_cache.get(block_id)
        if rank is None:
            idx = self.served_placements[block_id.array_id].owner_index(
                block_id.coords
            )
            rank = self._server_rank_cache[block_id] = self.config.server_rank(idx)
        return rank

    def block_shape(self, block_id: BlockId) -> tuple[int, ...]:
        return block_shape(
            self.table, self.array_desc(block_id.array_id), block_id.coords
        )

    def make_backend(self):
        return make_backend(
            self.config.backend,
            self.cost,
            plans=self.plan_cache,
            timed=self.config.kernel_wallclock,
        )

    @property
    def real(self) -> bool:
        return self.config.backend == "real"

    @property
    def resilient(self) -> bool:
        """Whether the resilient messaging protocol is active."""
        return self.config.resilience_enabled

    # -- block space enumeration ------------------------------------------------
    def all_blocks(self, array_id: int):
        """Iterate all block coordinates of an array."""
        from itertools import product

        desc = self.array_desc(array_id)
        space = self.table.array_block_space(desc)
        yield from product(*space)

    # -- input scatter ------------------------------------------------------------
    def blocks_from_input(
        self, array_id: int, value: Optional[np.ndarray]
    ) -> dict[tuple[int, ...], Block]:
        """Slice a full input ndarray (or None = zeros) into blocks."""
        desc = self.array_desc(array_id)
        full_shape = self.table.array_shape(desc)
        if value is not None:
            value = np.asarray(value, dtype=self.dtype)
            if value.shape != full_shape:
                raise SIPError(
                    f"input for array {desc.name!r} has shape {value.shape}, "
                    f"declared shape is {full_shape}"
                )
        out: dict[tuple[int, ...], Block] = {}
        for coords in self.all_blocks(array_id):
            shape = block_shape(self.table, desc, coords)
            data = None
            if self.real:
                if value is None:
                    data = np.zeros(shape, dtype=self.dtype)
                else:
                    slices = tuple(
                        slice(
                            self.table[i].segment(c).start,
                            self.table[i].segment(c).stop,
                        )
                        for i, c in zip(desc.index_ids, coords)
                    )
                    data = np.ascontiguousarray(value[slices])
            out[coords] = Block(shape, data, dtype=self.dtype)
        return out

    def assemble_array(
        self, array_id: int, blocks: dict[tuple[int, ...], Block]
    ) -> np.ndarray:
        """Place blocks back into a full ndarray (real mode only)."""
        if not self.real:
            raise SIPError("array contents are not available in model mode")
        desc = self.array_desc(array_id)
        full = np.zeros(self.table.array_shape(desc), dtype=self.dtype)
        for coords, block in blocks.items():
            if block.data is None:
                continue
            slices = tuple(
                slice(
                    self.table[i].segment(c).start, self.table[i].segment(c).stop
                )
                for i, c in zip(desc.index_ids, coords)
            )
            full[slices] = block.data
        return full
