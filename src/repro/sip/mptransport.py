"""Real multiprocess transport for the SIP: pipes + shared memory.

The ``execution="mp"`` backend runs every SIP rank as a forked OS
process.  Each child keeps its *own* discrete-event :class:`Simulator`
hosting only that rank's coroutines (a worker's interpreter and service
pump, a server's message loop, the master), and an :class:`MPEngine`
drains the local event queue, blocking on the real pipe mesh whenever
the rank is purely waiting on a message.  This reuses the entire
runtime unchanged -- decoded instruction stream, KernelPlanCache,
MemoryManager, scheduler -- because those only ever talk to the narrow
transport surface of :mod:`repro.sip.transport`:

* :class:`MPComm` implements the endpoint: ``isend`` pickles control
  messages over a duplex :class:`multiprocessing.connection.Connection`
  per peer pair, detouring block payloads at or above
  ``SIPConfig.mp_payload_shm_min`` bytes through named POSIX shared
  memory segments (created by the sender, copied out and unlinked by
  the receiver); ``irecv`` posts to the rank's local tag-matched
  mailbox, reused verbatim from the simulator.
* :class:`MPBarrier` replaces the simulator's shared-counter barrier
  with an arrive/release message protocol coordinated by a daemon
  coroutine on the master rank (:func:`mp_barrier_service`).

Simulated time still advances inside each child (``compute`` /
``Timeout`` effects pile onto the local virtual clock), but it no
longer means anything across ranks -- wallclock is what the backend is
for.  Determinism therefore cannot come from timing: it comes from the
canonical fold order of every reduction (collective ledger, '+=' put
buffering), which is what makes mp output bitwise identical to the
simulator's.

Shared-memory lifecycle: segment names are ``rmp<run>r<rank>n<seq>``;
the sender copies the payload in and closes; the receiver attaches,
copies out, closes and unlinks.  Segments bypass the stdlib resource
tracker entirely (see :func:`_untracked_shm`) -- lifecycle is managed
explicitly, and if a rank dies between send and receive the parent
sweeps ``/dev/shm/rmp<run>*`` after the run.
"""

from __future__ import annotations

import contextlib
import dataclasses
import heapq
import time
from dataclasses import dataclass
from multiprocessing import connection as mpconn
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Generator, Iterable, Optional

import numpy as np

from ..simmpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    Request,
    WorldStats,
    _Mailbox,
    _PostedRecv,
)
from ..simmpi.network import payload_nbytes
from ..simmpi.simulator import SimulationError, Simulator, Timeout
from .config import SIPError
from .blocks import Block
from .messages import (
    BARRIER_RELEASE_TAG,
    BARRIER_TAG,
    BarrierArrive,
    BarrierRelease,
)

__all__ = [
    "MPWorld",
    "MPComm",
    "MPBarrier",
    "MPEngine",
    "ShmStats",
    "mp_barrier_service",
    "pack_payload",
    "unpack_payload",
]


@dataclass
class ShmStats:
    """Shared-memory traffic of one rank (sender + receiver sides)."""

    segments_created: int = 0
    segments_unlinked: int = 0
    bytes_shared: int = 0


@dataclass(frozen=True)
class _ShmRef:
    """Placeholder for a Block payload travelling via shared memory."""

    name: str
    data_shape: tuple
    dtype_str: str
    block_shape: tuple


@contextlib.contextmanager
def _untracked_shm():
    """Open a SharedMemory without resource-tracker registration.

    Segment lifecycle is managed explicitly here (the receiver unlinks,
    the parent sweeps after a crash).  Python < 3.13 has no
    ``track=False`` and registers on *attach* as well as create, so
    with a forked (shared) tracker the sender's unregister can race the
    receiver's attach/unlink pair and corrupt the tracker's cache.
    Suppressing registration around the constructor avoids the race;
    the engine is single-threaded, so the swap is safe.
    """
    orig_reg = resource_tracker.register
    orig_unreg = resource_tracker.unregister
    resource_tracker.register = lambda name, rtype: None
    resource_tracker.unregister = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = orig_reg
        resource_tracker.unregister = orig_unreg


def pack_payload(payload: Any, shm_min: int, namer, stats: ShmStats) -> Any:
    """Detach a large Block payload into a shared-memory segment."""
    block = getattr(payload, "block", None)
    if (
        not isinstance(block, Block)
        or block.data is None
        or block.data.nbytes < shm_min
    ):
        return payload
    data = block.data
    name = namer()
    with _untracked_shm():
        seg = shared_memory.SharedMemory(name=name, create=True, size=data.nbytes)
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
    np.copyto(view, data)
    del view
    seg.close()
    stats.segments_created += 1
    stats.bytes_shared += data.nbytes
    ref = _ShmRef(name, tuple(data.shape), str(data.dtype), tuple(block.shape))
    return dataclasses.replace(payload, block=ref)


def unpack_payload(payload: Any, stats: ShmStats) -> Any:
    """Reattach a shared-memory Block payload (copy out, then unlink)."""
    ref = getattr(payload, "block", None)
    if not isinstance(ref, _ShmRef):
        return payload
    with _untracked_shm():
        seg = shared_memory.SharedMemory(name=ref.name)
        view = np.ndarray(
            ref.data_shape, dtype=np.dtype(ref.dtype_str), buffer=seg.buf
        )
        data = view.copy()
        del view
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - double delivery guard
            pass
    stats.segments_unlinked += 1
    return dataclasses.replace(payload, block=Block(ref.block_shape, data))


class MPWorld:
    """One rank's view of the process mesh (transport-world surface).

    Unlike the simulated :class:`~repro.simmpi.comm.World`, which holds
    every rank's mailbox, an ``MPWorld`` lives inside a single child
    process: it owns that rank's mailbox, its pipe connections to every
    peer, and the local traffic stats (merged by the parent afterwards).
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        rank: int,
        conns: dict[int, Any],
        run_id: str,
        shm_min: int = 1 << 14,
        timeout: float = 120.0,
        coordinator: int = 0,
    ) -> None:
        self.sim = sim
        self.size = size
        self.rank = rank
        self.stats = WorldStats()
        self.shm_stats = ShmStats()
        self._mailbox = _Mailbox()
        self._conns = dict(conns)
        self._live = dict(self._conns)
        self._run_id = run_id
        self._shm_min = shm_min
        self._timeout = timeout
        self._coordinator = coordinator
        self._barrier_groups: dict[str, list[int]] = {}
        self._shm_counter = 0

    # -- transport-world surface -----------------------------------------
    def comm(self, rank: int) -> "MPComm":
        if rank != self.rank:
            raise SIPError(
                f"rank {self.rank} cannot build an endpoint for rank {rank}; "
                "each mp child holds exactly one rank"
            )
        return MPComm(self)

    def barrier(self, group: Iterable[int], name: str = "barrier") -> "MPBarrier":
        members = sorted(set(group))
        if not members:
            raise ValueError("barrier group must be non-empty")
        # the coordinator's service looks groups up by name
        self._barrier_groups[name] = members
        return MPBarrier(self, members, name)

    # -- shared memory -----------------------------------------------------
    def _shm_name(self) -> str:
        self._shm_counter += 1
        return f"rmp{self._run_id}r{self.rank}n{self._shm_counter}"

    # -- real message intake ----------------------------------------------
    def _deliver_raw(self, raw: tuple) -> None:
        source, tag, nbytes, packed = raw
        payload = unpack_payload(packed, self.shm_stats)
        self._mailbox.deliver(
            Message(payload=payload, source=source, tag=tag, nbytes=nbytes)
        )

    def _drain_conn(self, rank: int, conn: Any) -> int:
        delivered = 0
        while True:
            try:
                if not conn.poll(0):
                    break
                raw = conn.recv()
            except (EOFError, OSError):
                # a finished peer closing its end is normal shutdown
                # skew; a *needed* peer's death surfaces as a timeout
                # (or an all-peers-gone error) on the next wait
                self._live.pop(rank, None)
                break
            self._deliver_raw(raw)
            delivered += 1
        return delivered

    def poll(self) -> int:
        """Drain every readable connection without blocking."""
        delivered = 0
        for rank, conn in list(self._live.items()):
            delivered += self._drain_conn(rank, conn)
        return delivered

    def wait_for_message(self) -> int:
        """Block until at least one message arrives; deliver it.

        Raises :class:`SIPError` when no peer can still send (all pipes
        closed) or nothing arrives within the configured watchdog
        window -- both mean a stalled or crashed peer.
        """
        deadline = time.monotonic() + self._timeout
        while True:
            if not self._live:
                raise SIPError(
                    f"rank {self.rank}: all peers disconnected while "
                    "work is still pending"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SIPError(
                    f"rank {self.rank}: no message in {self._timeout:g}s "
                    "while work is still pending (a peer stalled or died)"
                )
            by_conn = {conn: rank for rank, conn in self._live.items()}
            ready = mpconn.wait(list(by_conn), timeout=remaining)
            delivered = 0
            for conn in ready:
                delivered += self._drain_conn(by_conn[conn], conn)
            if delivered:
                return delivered


class MPComm:
    """A single rank's endpoint onto the process mesh."""

    __slots__ = ("world", "rank")

    def __init__(self, world: MPWorld) -> None:
        self.world = world
        self.rank = world.rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point to point ---------------------------------------------------
    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int,
        nbytes: Optional[int] = None,
    ) -> Request:
        """Non-blocking send: written to the peer's pipe immediately.

        The returned request is already complete -- a real transport
        has no injection time to model, and delivery latency is the
        pipe's problem.
        """
        world = self.world
        if not (0 <= dest < world.size):
            raise ValueError(f"invalid destination rank {dest}")
        size = payload_nbytes(payload, nbytes)
        world.stats.messages_sent += 1
        world.stats.bytes_sent += size
        if dest == self.rank:
            world._mailbox.deliver(
                Message(payload=payload, source=self.rank, tag=tag, nbytes=size)
            )
        else:
            world.stats.remote_bytes += size
            packed = pack_payload(
                payload, world._shm_min, world._shm_name, world.shm_stats
            )
            conn = world._conns.get(dest)
            if conn is None:
                raise SIPError(f"rank {self.rank} has no connection to {dest}")
            try:
                conn.send((self.rank, tag, size, packed))
            except (BrokenPipeError, OSError) as err:
                raise SIPError(
                    f"rank {self.rank}: send to rank {dest} failed; "
                    f"the peer process is gone ({err})"
                ) from err
        done = world.sim.event(name=f"mpsend {self.rank}->{dest} tag={tag}")
        done.succeed(None)
        return Request(done, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        ev = self.sim.event(name=f"mpirecv rank={self.rank} src={source} tag={tag}")
        self.world._mailbox.post(_PostedRecv(source, tag, ev))
        return Request(ev, "recv")

    def send(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        req = self.isend(payload, dest, tag, nbytes=nbytes)
        yield req.event

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, Message]:
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg

    def compute(self, seconds: float) -> Timeout:
        """Local work: advances this rank's (now meaningless) virtual
        clock; the actual CPU time was already spent by the kernel."""
        return Timeout(seconds)



class MPBarrier:
    """Message-based barrier: arrive at the coordinator, await release."""

    def __init__(self, world: MPWorld, group: list[int], name: str) -> None:
        self.world = world
        self.group = group
        self.name = name
        self._member_generation: dict[int, int] = {r: 0 for r in group}

    def wait(self, comm: MPComm) -> Generator[Any, Any, None]:
        rank = comm.rank
        if rank not in self._member_generation:
            raise ValueError(
                f"rank {rank} is not a member of barrier {self.name!r}"
            )
        gen = self._member_generation[rank]
        self._member_generation[rank] = gen + 1
        coordinator = self.world._coordinator
        # post the release receive before announcing arrival, so the
        # coordinator's (possibly instant) answer cannot be missed
        req = comm.irecv(source=coordinator, tag=BARRIER_RELEASE_TAG)
        comm.isend(
            BarrierArrive(self.name, gen, rank), dest=coordinator, tag=BARRIER_TAG
        )
        msg = yield req.event
        release = msg.payload
        if (
            not isinstance(release, BarrierRelease)
            or release.name != self.name
            or release.generation != gen
        ):
            raise SIPError(
                f"rank {rank}: barrier protocol violation: waiting on "
                f"{self.name!r} gen {gen}, got {release!r}"
            )


def mp_barrier_service(comm: MPComm, world: MPWorld) -> Generator:
    """Coordinator daemon (runs on the master rank's engine).

    Counts :class:`BarrierArrive` messages per (name, generation) and
    broadcasts :class:`BarrierRelease` when the whole group arrived.
    Ranks progress through generations at their own pace, so distinct
    generations of the same barrier can be pending at once.
    """
    counts: dict[tuple[str, int], list[int]] = {}
    while True:
        msg = yield from comm.recv(tag=BARRIER_TAG)
        arrive = msg.payload
        if not isinstance(arrive, BarrierArrive):
            raise SIPError(f"barrier service got unexpected message {arrive!r}")
        group = world._barrier_groups.get(arrive.name)
        if group is None:
            raise SIPError(f"barrier service knows no barrier {arrive.name!r}")
        key = (arrive.name, arrive.generation)
        arrived = counts.setdefault(key, [])
        arrived.append(msg.source)
        if len(arrived) == len(group):
            del counts[key]
            for member in sorted(arrived):
                comm.isend(
                    BarrierRelease(arrive.name, arrive.generation),
                    dest=member,
                    tag=BARRIER_RELEASE_TAG,
                )


class MPEngine:
    """Drive one rank's local simulator against the real pipe mesh.

    The loop mirrors :meth:`Simulator.run` step for step, with two
    additions: every few events it opportunistically drains readable
    pipes (so the service pump stays responsive while local work is
    queued), and when the local queue runs dry with coroutines still
    active it *blocks* on the mesh instead of declaring deadlock --
    the awaited event will be triggered by an incoming message.
    """

    #: how many local events to run between non-blocking pipe polls
    POLL_INTERVAL = 32

    def __init__(self, sim: Simulator, world: MPWorld) -> None:
        self.sim = sim
        self.world = world

    def run(self) -> None:
        sim = self.sim
        world = self.world
        queue = sim._queue
        steps = 0
        while True:
            while queue:
                call = heapq.heappop(queue)
                if call.time < sim.now - 1e-12:
                    raise SimulationError("time went backwards")
                sim.now = call.time
                call.fn(*call.args)
                if sim._errors:
                    raise sim._errors[0]
                steps += 1
                if steps % self.POLL_INTERVAL == 0:
                    world.poll()
            if sim._active == 0:
                return
            world.wait_for_message()
