"""Real multiprocess transport for the SIP: pipes + shared memory.

The ``execution="mp"`` backend runs every SIP rank as a forked OS
process.  Each child keeps its *own* discrete-event :class:`Simulator`
hosting only that rank's coroutines (a worker's interpreter and service
pump, a server's message loop, the master), and an :class:`MPEngine`
drains the local event queue, blocking on the real pipe mesh whenever
the rank is purely waiting on a message.  This reuses the entire
runtime unchanged -- decoded instruction stream, KernelPlanCache,
MemoryManager, scheduler -- because those only ever talk to the narrow
transport surface of :mod:`repro.sip.transport`:

* :class:`MPComm` implements the endpoint: ``isend`` frames control
  messages over a duplex :class:`multiprocessing.connection.Connection`
  per peer pair, detouring block payloads at or above
  ``SIPConfig.mp_payload_shm_min`` bytes through the pooled
  shared-memory slab arena of :mod:`repro.sip.arena` (slot leased and
  filled by the sender, mapped zero-copy by the receiver; a one-shot
  segment is the overflow path); ``irecv`` posts to the rank's local
  tag-matched mailbox, reused verbatim from the simulator.
* :class:`MPBarrier` replaces the simulator's shared-counter barrier
  with an arrive/release message protocol coordinated by a daemon
  coroutine on the master rank (:func:`mp_barrier_service`).

Control-plane framing: sends are queued in a per-destination outbox
and coalesced -- everything queued in one engine iteration (data
replies, Acks, barrier traffic alike) leaves as a *single*
``send_bytes`` frame per peer, pickled once with protocol 5 and
out-of-band buffers so below-threshold block data crosses the pipe
without an extra pickle copy.  Outboxes flush when they reach
``mp_batch_max_msgs`` messages or ``mp_batch_max_bytes`` payload
bytes, on the engine's periodic poll, and always before the rank
blocks on the mesh -- a queued message can therefore never deadlock
its own reply.

Simulated time still advances inside each child (``compute`` /
``Timeout`` effects pile onto the local virtual clock), but it no
longer means anything across ranks -- wallclock is what the backend is
for.  Determinism therefore cannot come from timing: it comes from the
canonical fold order of every reduction (collective ledger, '+=' put
buffering), which is what makes mp output bitwise identical to the
simulator's.

Shared-memory lifecycle: arena slabs are named
``rmp<run>r<rank>e<epoch>a<class>x<seq>`` and live for the whole run
(the parent unlinks them after the fleet joins); overflow one-shot
segments are ``rmp<run>r<rank>e<epoch>n<seq>`` -- the sender copies
the payload in and closes, the receiver attaches, copies out, closes
and unlinks.  The ``e<epoch>`` component makes the name streams of
*distinct* :class:`MPWorld` instances in one process disjoint
(checkpoint-restart chaining re-creates worlds).  Segments bypass the
stdlib resource tracker entirely (see
:func:`repro.sip.arena._untracked_shm`) -- lifecycle is managed
explicitly, and the parent sweeps ``/dev/shm/rmp<run>*`` after the
run.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import pickle
import struct
import time
from dataclasses import dataclass
from multiprocessing import connection as mpconn
from multiprocessing import shared_memory
from typing import Any, Generator, Iterable, Optional

import numpy as np

from ..simmpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    Request,
    WorldStats,
    _Mailbox,
    _PostedRecv,
)
from ..simmpi.network import payload_nbytes
from ..simmpi.simulator import SimulationError, Simulator, Timeout
from .arena import ArenaReceiver, ArenaRef, ArenaStats, SlabArena, _untracked_shm
from .config import SIPError
from .blocks import Block
from .messages import (
    BARRIER_RELEASE_TAG,
    BARRIER_TAG,
    BarrierArrive,
    BarrierRelease,
)

__all__ = [
    "MPWorld",
    "MPComm",
    "MPBarrier",
    "MPEngine",
    "ShmStats",
    "BatchStats",
    "mp_barrier_service",
    "pack_payload",
    "unpack_payload",
    "encode_batch",
    "decode_batch",
]

#: distinguishes the shm name streams of MPWorlds created in one process
_WORLD_EPOCH = itertools.count()


@dataclass
class ShmStats:
    """One-shot (non-arena) shared-memory traffic of one rank."""

    segments_created: int = 0
    segments_unlinked: int = 0
    bytes_shared: int = 0


@dataclass
class BatchStats:
    """Control-plane frame coalescing of one rank (sender side)."""

    batches: int = 0  # frames written (one send_bytes each)
    messages: int = 0  # messages carried inside those frames
    frame_bytes: int = 0  # total framed bytes on the wire


@dataclass(frozen=True)
class _ShmRef:
    """Placeholder for a Block payload travelling via a one-shot segment."""

    name: str
    data_shape: tuple
    dtype_str: str
    block_shape: tuple

    @property
    def nbytes(self) -> int:
        # traffic accounting must see the block bytes this stub stands
        # for, never the size of the stub itself
        count = 1
        for dim in self.data_shape:
            count *= dim
        return count * np.dtype(self.dtype_str).itemsize


def pack_payload(payload: Any, shm_min: int, namer, stats: ShmStats) -> Any:
    """Detach a large Block payload into a one-shot shm segment.

    This is the overflow path (arena full or oversize payload) and the
    whole story when the arena is disabled.
    """
    block = getattr(payload, "block", None)
    if (
        not isinstance(block, Block)
        or block.data is None
        or block.data.nbytes < shm_min
    ):
        return payload
    data = block.data
    name = namer()
    with _untracked_shm():
        seg = shared_memory.SharedMemory(name=name, create=True, size=data.nbytes)
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
    np.copyto(view, data)
    del view
    seg.close()
    stats.segments_created += 1
    stats.bytes_shared += data.nbytes
    ref = _ShmRef(name, tuple(data.shape), str(data.dtype), tuple(block.shape))
    return dataclasses.replace(payload, block=ref)


def unpack_payload(payload: Any, stats: ShmStats) -> Any:
    """Reattach a one-shot shm Block payload (copy out, then unlink)."""
    ref = getattr(payload, "block", None)
    if not isinstance(ref, _ShmRef):
        return payload
    with _untracked_shm():
        seg = shared_memory.SharedMemory(name=ref.name)
        view = np.ndarray(
            ref.data_shape, dtype=np.dtype(ref.dtype_str), buffer=seg.buf
        )
        data = view.copy()
        del view
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - double delivery guard
            pass
    stats.segments_unlinked += 1
    return dataclasses.replace(payload, block=Block(ref.block_shape, data))


# -- control-plane framing ---------------------------------------------------

_FRAME_HEADER = struct.Struct("<QI")  # pickle length, out-of-band buffer count
_BUF_HEADER = struct.Struct("<Q")  # one out-of-band buffer's length


def encode_batch(raws: list) -> bytes:
    """Frame a list of raw ``(source, tag, nbytes, payload)`` messages.

    The list is pickled once with protocol 5; contiguous buffers
    (below-threshold numpy block data) are carried out-of-band after
    the pickle, each behind its own length word, so they cross the
    pipe without the in-band pickle copy.  Non-contiguous buffers
    (strided views) fall back in-band.
    """
    bufs: list[memoryview] = []

    def _keep(pb: pickle.PickleBuffer) -> bool:
        try:
            raw = pb.raw()
        except BufferError:
            return True  # non-contiguous: pickle in-band
        bufs.append(raw)
        return False  # carried out-of-band

    pkl = pickle.dumps(raws, protocol=5, buffer_callback=_keep)
    parts = [_FRAME_HEADER.pack(len(pkl), len(bufs)), pkl]
    for raw in bufs:
        parts.append(_BUF_HEADER.pack(raw.nbytes))
        parts.append(raw)
    return b"".join(parts)


def decode_batch(frame) -> list:
    """Decode one frame back into its list of raw message tuples.

    The whole frame is copied into a single writable ``bytearray``
    first: out-of-band numpy arrays reconstruct as views over that
    buffer, and views over immutable ``bytes`` would come out
    read-only.
    """
    buf = memoryview(bytearray(frame))
    pkl_len, n_bufs = _FRAME_HEADER.unpack_from(buf, 0)
    off = _FRAME_HEADER.size
    pkl = buf[off : off + pkl_len]
    off += pkl_len
    bufs = []
    for _ in range(n_bufs):
        (blen,) = _BUF_HEADER.unpack_from(buf, off)
        off += _BUF_HEADER.size
        bufs.append(buf[off : off + blen])
        off += blen
    return pickle.loads(pkl, buffers=bufs)


class MPWorld:
    """One rank's view of the process mesh (transport-world surface).

    Unlike the simulated :class:`~repro.simmpi.comm.World`, which holds
    every rank's mailbox, an ``MPWorld`` lives inside a single child
    process: it owns that rank's mailbox, its pipe connections to every
    peer, its slab arena and outboxes, and the local traffic stats
    (merged by the parent afterwards).
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        rank: int,
        conns: dict[int, Any],
        run_id: str,
        shm_min: int = 1 << 14,
        timeout: float = 120.0,
        coordinator: int = 0,
        arena: bool = True,
        arena_slab_bytes: int = 1 << 22,
        arena_max_bytes: int = 1 << 26,
        batch_max_msgs: int = 128,
        batch_max_bytes: int = 1 << 20,
        ledger=None,
    ) -> None:
        self.sim = sim
        self.size = size
        self.rank = rank
        self.stats = WorldStats()
        self.shm_stats = ShmStats()
        self.arena_stats = ArenaStats()
        self.batch_stats = BatchStats()
        self._mailbox = _Mailbox()
        self._conns = dict(conns)
        self._live = dict(self._conns)
        self._run_id = run_id
        self._shm_min = shm_min
        self._timeout = timeout
        self._coordinator = coordinator
        self._barrier_groups: dict[str, list[int]] = {}
        self._shm_counter = 0
        self.epoch = next(_WORLD_EPOCH)
        self.arena: Optional[SlabArena] = None
        if arena:
            self.arena = SlabArena(
                run_id,
                rank,
                size,
                slab_bytes=arena_slab_bytes,
                max_bytes=arena_max_bytes,
                epoch=self.epoch,
                stats=self.arena_stats,
                ledger=ledger,
            )
        self.receiver = ArenaReceiver(stats=self.arena_stats)
        self._batch_max_msgs = max(1, int(batch_max_msgs))
        self._batch_max_bytes = max(1, int(batch_max_bytes))
        self._outbox: dict[int, list] = {}
        self._outbox_nbytes: dict[int, int] = {}

    # -- transport-world surface -----------------------------------------
    def comm(self, rank: int) -> "MPComm":
        if rank != self.rank:
            raise SIPError(
                f"rank {self.rank} cannot build an endpoint for rank {rank}; "
                "each mp child holds exactly one rank"
            )
        return MPComm(self)

    def barrier(self, group: Iterable[int], name: str = "barrier") -> "MPBarrier":
        members = sorted(set(group))
        if not members:
            raise ValueError("barrier group must be non-empty")
        # the coordinator's service looks groups up by name
        self._barrier_groups[name] = members
        return MPBarrier(self, members, name)

    # -- shared memory -----------------------------------------------------
    def _shm_name(self) -> str:
        self._shm_counter += 1
        return f"rmp{self._run_id}r{self.rank}e{self.epoch}n{self._shm_counter}"

    def _pack(self, payload: Any, dest: int) -> Any:
        """Detour a large Block payload: arena slot, else one-shot shm."""
        block = getattr(payload, "block", None)
        if (
            not isinstance(block, Block)
            or block.data is None
            or block.data.nbytes < self._shm_min
        ):
            return payload
        if self.arena is not None:
            ref = self.arena.place(block, dest)
            if ref is not None:
                return dataclasses.replace(payload, block=ref)
        return pack_payload(payload, self._shm_min, self._shm_name, self.shm_stats)

    def _unpack(self, packed: Any) -> Any:
        ref = getattr(packed, "block", None)
        if isinstance(ref, ArenaRef):
            return dataclasses.replace(packed, block=self.receiver.unpack(ref))
        return unpack_payload(packed, self.shm_stats)

    # -- batched sends -----------------------------------------------------
    def queue_send(self, dest: int, tag: int, size: int, payload: Any) -> None:
        """Queue one message for ``dest``; flush if the outbox is full."""
        packed = self._pack(payload, dest)
        box = self._outbox.setdefault(dest, [])
        box.append((self.rank, tag, size, packed))
        pending = self._outbox_nbytes.get(dest, 0) + size
        self._outbox_nbytes[dest] = pending
        if len(box) >= self._batch_max_msgs or pending >= self._batch_max_bytes:
            self._flush_dest(dest)

    def _flush_dest(self, dest: int) -> None:
        box = self._outbox.pop(dest, None)
        self._outbox_nbytes.pop(dest, None)
        if not box:
            return
        conn = self._conns.get(dest)
        if conn is None:
            raise SIPError(f"rank {self.rank} has no connection to {dest}")
        frame = encode_batch(box)
        self.batch_stats.batches += 1
        self.batch_stats.messages += len(box)
        self.batch_stats.frame_bytes += len(frame)
        try:
            conn.send_bytes(frame)
        except (BrokenPipeError, OSError) as err:
            raise SIPError(
                f"rank {self.rank}: send to rank {dest} failed; "
                f"the peer process is gone ({err})"
            ) from err

    def flush(self) -> None:
        """Write out every queued outbox frame."""
        for dest in list(self._outbox):
            self._flush_dest(dest)

    # -- real message intake ----------------------------------------------
    def _deliver_raw(self, raw: tuple) -> None:
        source, tag, nbytes, packed = raw
        payload = self._unpack(packed)
        self._mailbox.deliver(
            Message(payload=payload, source=source, tag=tag, nbytes=nbytes)
        )

    def _drain_conn(self, rank: int, conn: Any) -> int:
        delivered = 0
        while True:
            try:
                if not conn.poll(0):
                    break
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                # a finished peer closing its end is normal shutdown
                # skew; a *needed* peer's death surfaces as a timeout
                # (or an all-peers-gone error) on the next wait
                self._live.pop(rank, None)
                break
            for raw in decode_batch(frame):
                self._deliver_raw(raw)
                delivered += 1
        return delivered

    def poll(self) -> int:
        """Drain every readable connection without blocking."""
        delivered = 0
        for rank, conn in list(self._live.items()):
            delivered += self._drain_conn(rank, conn)
        return delivered

    def wait_for_message(self) -> int:
        """Block until at least one message arrives; deliver it.

        Flushes the outboxes first -- blocking with queued sends could
        deadlock the very reply being awaited.  Raises
        :class:`SIPError` when no peer can still send (all pipes
        closed) or nothing arrives within the configured watchdog
        window -- both mean a stalled or crashed peer.
        """
        self.flush()
        deadline = time.monotonic() + self._timeout
        while True:
            if not self._live:
                raise SIPError(
                    f"rank {self.rank}: all peers disconnected while "
                    "work is still pending"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SIPError(
                    f"rank {self.rank}: no message in {self._timeout:g}s "
                    "while work is still pending (a peer stalled or died)"
                )
            by_conn = {conn: rank for rank, conn in self._live.items()}
            ready = mpconn.wait(list(by_conn), timeout=remaining)
            delivered = 0
            for conn in ready:
                delivered += self._drain_conn(by_conn[conn], conn)
            if delivered:
                return delivered


class MPComm:
    """A single rank's endpoint onto the process mesh."""

    __slots__ = ("world", "rank")

    def __init__(self, world: MPWorld) -> None:
        self.world = world
        self.rank = world.rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point to point ---------------------------------------------------
    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int,
        nbytes: Optional[int] = None,
    ) -> Request:
        """Non-blocking send: queued on the peer's outbox immediately.

        The returned request is already complete -- a real transport
        has no injection time to model; the frame leaves the process
        no later than the next time this rank blocks on the mesh.
        """
        world = self.world
        if not (0 <= dest < world.size):
            raise ValueError(f"invalid destination rank {dest}")
        size = payload_nbytes(payload, nbytes)
        world.stats.messages_sent += 1
        world.stats.bytes_sent += size
        if dest == self.rank:
            world._mailbox.deliver(
                Message(payload=payload, source=self.rank, tag=tag, nbytes=size)
            )
        else:
            world.stats.remote_bytes += size
            world.queue_send(dest, tag, size, payload)
        done = world.sim.event(name=f"mpsend {self.rank}->{dest} tag={tag}")
        done.succeed(None)
        return Request(done, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        ev = self.sim.event(name=f"mpirecv rank={self.rank} src={source} tag={tag}")
        self.world._mailbox.post(_PostedRecv(source, tag, ev))
        return Request(ev, "recv")

    def send(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        req = self.isend(payload, dest, tag, nbytes=nbytes)
        yield req.event

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, Message]:
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg

    def compute(self, seconds: float) -> Timeout:
        """Local work: advances this rank's (now meaningless) virtual
        clock; the actual CPU time was already spent by the kernel."""
        return Timeout(seconds)



class MPBarrier:
    """Message-based barrier: arrive at the coordinator, await release."""

    def __init__(self, world: MPWorld, group: list[int], name: str) -> None:
        self.world = world
        self.group = group
        self.name = name
        self._member_generation: dict[int, int] = {r: 0 for r in group}

    def wait(self, comm: MPComm) -> Generator[Any, Any, None]:
        rank = comm.rank
        if rank not in self._member_generation:
            raise ValueError(
                f"rank {rank} is not a member of barrier {self.name!r}"
            )
        gen = self._member_generation[rank]
        self._member_generation[rank] = gen + 1
        coordinator = self.world._coordinator
        # post the release receive before announcing arrival, so the
        # coordinator's (possibly instant) answer cannot be missed
        req = comm.irecv(source=coordinator, tag=BARRIER_RELEASE_TAG)
        comm.isend(
            BarrierArrive(self.name, gen, rank), dest=coordinator, tag=BARRIER_TAG
        )
        msg = yield req.event
        release = msg.payload
        if (
            not isinstance(release, BarrierRelease)
            or release.name != self.name
            or release.generation != gen
        ):
            raise SIPError(
                f"rank {rank}: barrier protocol violation: waiting on "
                f"{self.name!r} gen {gen}, got {release!r}"
            )


def mp_barrier_service(comm: MPComm, world: MPWorld) -> Generator:
    """Coordinator daemon (runs on the master rank's engine).

    Counts :class:`BarrierArrive` messages per (name, generation) and
    broadcasts :class:`BarrierRelease` when the whole group arrived.
    Ranks progress through generations at their own pace, so distinct
    generations of the same barrier can be pending at once.  Releases
    ride the normal outboxes, piggybacking on whatever frame the
    master flushes next.
    """
    counts: dict[tuple[str, int], list[int]] = {}
    while True:
        msg = yield from comm.recv(tag=BARRIER_TAG)
        arrive = msg.payload
        if not isinstance(arrive, BarrierArrive):
            raise SIPError(f"barrier service got unexpected message {arrive!r}")
        group = world._barrier_groups.get(arrive.name)
        if group is None:
            raise SIPError(f"barrier service knows no barrier {arrive.name!r}")
        key = (arrive.name, arrive.generation)
        arrived = counts.setdefault(key, [])
        arrived.append(msg.source)
        if len(arrived) == len(group):
            del counts[key]
            for member in sorted(arrived):
                comm.isend(
                    BarrierRelease(arrive.name, arrive.generation),
                    dest=member,
                    tag=BARRIER_RELEASE_TAG,
                )


class MPEngine:
    """Drive one rank's local simulator against the real pipe mesh.

    The loop mirrors :meth:`Simulator.run` step for step, with two
    additions: every few events it flushes the outboxes and
    opportunistically drains readable pipes (so the service pump stays
    responsive while local work is queued), and when the local queue
    runs dry with coroutines still active it *blocks* on the mesh
    instead of declaring deadlock -- the awaited event will be
    triggered by an incoming message.  Outboxes are always flushed
    before blocking and before the engine returns, so no queued frame
    can outlive the loop.
    """

    #: how many local events to run between non-blocking pipe polls
    POLL_INTERVAL = 32

    def __init__(self, sim: Simulator, world: MPWorld) -> None:
        self.sim = sim
        self.world = world

    def run(self) -> None:
        sim = self.sim
        world = self.world
        queue = sim._queue
        steps = 0
        while True:
            while queue:
                call = heapq.heappop(queue)
                if call.time < sim.now - 1e-12:
                    raise SimulationError("time went backwards")
                sim.now = call.time
                call.fn(*call.args)
                if sim._errors:
                    raise sim._errors[0]
                steps += 1
                if steps % self.POLL_INTERVAL == 0:
                    world.flush()
                    world.poll()
            if sim._active == 0:
                world.flush()
                return
            world.wait_for_message()
