"""The SIP master rank.

The master sets up the calculation (the dry run happens before
simulated time starts; see :mod:`repro.sip.dryrun`) and then serves
two request streams from the workers (paper, Section V-B):

* **pardo chunks** -- iterations are doled out in shrinking chunks
  (guided self-scheduling); each request costs the master a fixed CPU
  overhead, which is exactly the serialization term that caps strong
  scaling at very large worker counts (Fig. 6);
* **collective scalar sums** -- the SIAL ``collective`` statement.

When every worker has reported completion, the master shuts down the
service pumps and I/O servers.
"""

from __future__ import annotations

from typing import Generator

from ..simmpi import AnyOf, Timeout
from ..simmpi.comm import SimComm
from ..simmpi.faults import ResilienceStats
from .config import SIPError
from .messages import (
    MASTER_TAG,
    REPLY_TAG_BASE,
    SERVER_TAG,
    SERVICE_TAG,
    Ack,
    ChunkReply,
    ChunkRequest,
    CollectiveContribution,
    CollectiveResult,
    Shutdown,
    WorkerDone,
)
from .runtime import SharedRuntime
from .scheduler import GuidedScheduler, StaticScheduler, enumerate_pardo

__all__ = ["MasterProcess"]

# rough wire size of one iteration tuple in a chunk reply
_BYTES_PER_ITERATION = 16


class MasterProcess:
    def __init__(self, rt: SharedRuntime, comm: SimComm) -> None:
        self.rt = rt
        self.comm = comm
        self.config = rt.config
        self.schedulers: dict[tuple[int, int], object] = {}
        self.collectives: dict[int, list[CollectiveContribution]] = {}
        self.collective_sources: dict[int, dict[int, int]] = {}
        self.chunks_served = 0
        self.resilience = ResilienceStats()
        # resilient protocol state: replayed replies for retried requests
        self._chunk_replay: dict[int, tuple[int, ChunkReply, int]] = {}
        self._collective_results: dict[int, float] = {}
        self._done_workers: set[int] = set()
        self._next_reply_tag = REPLY_TAG_BASE

    def run(self) -> Generator:
        resilient = self.rt.resilient
        done = 0
        while done < self.config.workers:
            msg = yield from self.comm.recv(tag=MASTER_TAG)
            payload = msg.payload
            if isinstance(payload, ChunkRequest):
                yield Timeout(self.config.machine.master_chunk_overhead)
                self._serve_chunk(payload, msg.source)
            elif isinstance(payload, CollectiveContribution):
                self._collect(payload, msg.source)
            elif isinstance(payload, WorkerDone):
                if resilient:
                    if payload.worker_index not in self._done_workers:
                        self._done_workers.add(payload.worker_index)
                        done += 1
                    else:
                        self.resilience.duplicates_ignored += 1
                    if payload.ack_tag >= 0:
                        self.comm.isend(
                            Ack(payload.ack_tag),
                            dest=msg.source,
                            tag=payload.ack_tag,
                        )
                else:
                    done += 1
            else:
                raise SIPError(f"master got unexpected message {payload!r}")
        targets = [(rank, SERVICE_TAG) for rank in self.config.worker_ranks]
        targets += [(rank, SERVER_TAG) for rank in self.config.server_ranks]
        if not resilient:
            for rank, tag in targets:
                self.comm.isend(Shutdown(), dest=rank, tag=tag)
            return
        # resilient shutdown: retry until acked, but give up quietly
        # after the retry budget -- the peer may have received an
        # earlier copy and exited with its ack dropped in transit
        for rank, tag in targets:
            self.rt.sim.spawn(
                self._reliable_shutdown(rank, tag), name=f"master.shutdown->{rank}"
            )
        # keep serving stragglers: a worker whose WorkerDone ack (or
        # last chunk/collective reply) was dropped is still retrying
        # into this mailbox and needs a re-ack to finish
        self.rt.sim.spawn(
            self._straggler_pump(), name="master.stragglers", daemon=True
        )

    def _straggler_pump(self) -> Generator:
        while True:
            msg = yield from self.comm.recv(tag=MASTER_TAG)
            payload = msg.payload
            if isinstance(payload, WorkerDone):
                self.resilience.duplicates_ignored += 1
                if payload.ack_tag >= 0:
                    self.comm.isend(
                        Ack(payload.ack_tag), dest=msg.source, tag=payload.ack_tag
                    )
            elif isinstance(payload, ChunkRequest):
                self._serve_chunk(payload, msg.source)
            elif isinstance(payload, CollectiveContribution):
                self._collect(payload, msg.source)

    def _reliable_shutdown(self, dest: int, tag: int) -> Generator:
        ack_tag = self._next_reply_tag
        self._next_reply_tag += 1
        req = self.comm.irecv(source=dest, tag=ack_tag)
        self.comm.isend(Shutdown(ack_tag), dest=dest, tag=tag)
        timeout = self.config.retry_timeout
        attempts = 0
        while not req.event.triggered:
            yield AnyOf([req.event, self.rt.sim.timeout_event(timeout)])
            if req.event.triggered:
                return
            attempts += 1
            if attempts > self.config.retry_limit:
                return
            self.resilience.control_retries += 1
            self.comm.isend(Shutdown(ack_tag), dest=dest, tag=tag)
            timeout *= self.config.retry_backoff

    def _serve_chunk(self, payload: ChunkRequest, source: int) -> None:
        if payload.seq >= 0:
            cached = self._chunk_replay.get(payload.worker_index)
            if cached is not None:
                seq, reply, nbytes = cached
                if payload.seq == seq:
                    # retried request whose reply (or request) was lost:
                    # replay the exact same chunk, never a fresh one
                    self.resilience.duplicates_ignored += 1
                    self.comm.isend(
                        reply, dest=source, tag=payload.reply_tag, nbytes=nbytes
                    )
                    return
                if payload.seq < seq:
                    self.resilience.duplicates_ignored += 1
                    return  # stale duplicate; its reply already went out
        chunk = self._next_chunk(payload)
        reply = ChunkReply(tuple(chunk))
        nbytes = 64 + _BYTES_PER_ITERATION * len(chunk)
        if payload.seq >= 0:
            self._chunk_replay[payload.worker_index] = (payload.seq, reply, nbytes)
        self.comm.isend(reply, dest=source, tag=payload.reply_tag, nbytes=nbytes)
        self.chunks_served += 1

    def _next_chunk(self, req: ChunkRequest) -> list[tuple[int, ...]]:
        key = (req.pardo_pc, req.activation)
        sched = self.schedulers.get(key)
        if sched is None:
            instr = self.rt.program.instructions[req.pardo_pc]
            _pardo_id, index_ids, conditions, _exit, _gets = instr.args
            iterations = enumerate_pardo(self.rt.table, index_ids, conditions)
            if self.config.scheduling == "static":
                sched = StaticScheduler(iterations, self.config.workers)
            else:
                sched = GuidedScheduler(
                    iterations, self.config.workers, self.config.chunk_factor
                )
            self.schedulers[key] = sched
        if isinstance(sched, StaticScheduler):
            return sched.next_chunk_for(req.worker_index)
        return sched.next_chunk()

    def _collect(self, payload: CollectiveContribution, source: int) -> None:
        if self.rt.resilient:
            if payload.seq in self._collective_results:
                # collective already completed; the worker's result was
                # lost in transit -- replay it
                self.resilience.duplicates_ignored += 1
                self.comm.isend(
                    CollectiveResult(self._collective_results[payload.seq]),
                    dest=source,
                    tag=payload.reply_tag,
                )
                return
            sources = self.collective_sources.get(payload.seq)
            if sources is not None and payload.worker_index in sources:
                # duplicate contribution while the collective is still
                # gathering; the original is already counted
                self.resilience.duplicates_ignored += 1
                return
        pending = self.collectives.setdefault(payload.seq, [])
        self.collective_sources.setdefault(payload.seq, {})[
            payload.worker_index
        ] = source
        pending.append(payload)
        if len(pending) == self.config.workers:
            # deterministic order: sum by worker index
            total = sum(
                p.value for p in sorted(pending, key=lambda p: p.worker_index)
            )
            sources = self.collective_sources.pop(payload.seq)
            for p in pending:
                self.comm.isend(
                    CollectiveResult(total),
                    dest=sources[p.worker_index],
                    tag=p.reply_tag,
                )
            del self.collectives[payload.seq]
            if self.rt.resilient:
                self._collective_results[payload.seq] = total
