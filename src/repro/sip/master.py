"""The SIP master rank.

The master sets up the calculation (the dry run happens before
simulated time starts; see :mod:`repro.sip.dryrun`) and then serves
two request streams from the workers (paper, Section V-B):

* **pardo chunks** -- iterations are doled out in shrinking chunks
  (guided self-scheduling); each request costs the master a fixed CPU
  overhead, which is exactly the serialization term that caps strong
  scaling at very large worker counts (Fig. 6);
* **collective scalar sums** -- the SIAL ``collective`` statement.

When every worker has reported completion, the master shuts down the
service pumps and I/O servers.
"""

from __future__ import annotations

from typing import Generator

from ..simmpi import AnyOf, Timeout
from ..simmpi.faults import ResilienceStats
from .blocks import BlockId, block_nbytes
from .config import SIPError
from .messages import (
    MASTER_TAG,
    REPLY_TAG_BASE,
    SERVER_TAG,
    SERVICE_TAG,
    Ack,
    ChunkReply,
    ChunkRequest,
    CollectiveContribution,
    CollectiveResult,
    Shutdown,
    WorkerDone,
)
from .runtime import SharedRuntime
from .transport import CommEndpoint
from .scheduler import (
    SchedStats,
    conditions_read_scalars,
    enumerate_pardo,
    make_scheduler,
)

__all__ = ["MasterProcess"]

# rough wire size of one iteration tuple in a chunk reply
_BYTES_PER_ITERATION = 16


class MasterProcess:
    def __init__(self, rt: SharedRuntime, comm: CommEndpoint) -> None:
        self.rt = rt
        self.comm = comm
        self.config = rt.config
        self.schedulers: dict[tuple[int, int], object] = {}
        self.sched_stats = SchedStats(policy=self.config.scheduling)
        self.collectives: dict[int, list[CollectiveContribution]] = {}
        self.collective_sources: dict[int, dict[int, int]] = {}
        self.chunks_served = 0
        self.resilience = ResilienceStats()
        # resilient protocol state: replayed replies for retried
        # requests, keyed (worker, pardo_pc, activation) so a late
        # duplicate from a previous activation can never alias a live
        # one's cached reply
        self._chunk_replay: dict[
            tuple[int, int, int], tuple[int, ChunkReply, int]
        ] = {}
        self._collective_results: dict[int, float] = {}
        self._done_workers: set[int] = set()
        self._next_reply_tag = REPLY_TAG_BASE
        self._nbytes_memo: dict[BlockId, int] = {}
        # scalar snapshot each scheduler was built against, for the
        # invariance assertion on later requests
        self._sched_scalars: dict[tuple[int, int], tuple[float, ...]] = {}

    def run(self) -> Generator:
        resilient = self.rt.resilient
        done = 0
        while done < self.config.workers:
            msg = yield from self.comm.recv(tag=MASTER_TAG)
            payload = msg.payload
            if isinstance(payload, ChunkRequest):
                yield Timeout(self.config.machine.master_chunk_overhead)
                self._serve_chunk(payload, msg.source)
            elif isinstance(payload, CollectiveContribution):
                self._collect(payload, msg.source)
            elif isinstance(payload, WorkerDone):
                if resilient:
                    if payload.worker_index not in self._done_workers:
                        self._done_workers.add(payload.worker_index)
                        done += 1
                    else:
                        self.resilience.duplicates_ignored += 1
                    if payload.ack_tag >= 0:
                        self.comm.isend(
                            Ack(payload.ack_tag),
                            dest=msg.source,
                            tag=payload.ack_tag,
                        )
                else:
                    done += 1
            else:
                raise SIPError(f"master got unexpected message {payload!r}")
        targets = [(rank, SERVICE_TAG) for rank in self.config.worker_ranks]
        targets += [(rank, SERVER_TAG) for rank in self.config.server_ranks]
        if not resilient:
            for rank, tag in targets:
                self.comm.isend(Shutdown(), dest=rank, tag=tag)
            return
        # resilient shutdown: retry until acked, but give up quietly
        # after the retry budget -- the peer may have received an
        # earlier copy and exited with its ack dropped in transit
        for rank, tag in targets:
            self.rt.sim.spawn(
                self._reliable_shutdown(rank, tag), name=f"master.shutdown->{rank}"
            )
        # keep serving stragglers: a worker whose WorkerDone ack (or
        # last chunk/collective reply) was dropped is still retrying
        # into this mailbox and needs a re-ack to finish
        self.rt.sim.spawn(
            self._straggler_pump(), name="master.stragglers", daemon=True
        )

    def _straggler_pump(self) -> Generator:
        while True:
            msg = yield from self.comm.recv(tag=MASTER_TAG)
            payload = msg.payload
            if isinstance(payload, WorkerDone):
                self.resilience.duplicates_ignored += 1
                if payload.ack_tag >= 0:
                    self.comm.isend(
                        Ack(payload.ack_tag), dest=msg.source, tag=payload.ack_tag
                    )
            elif isinstance(payload, ChunkRequest):
                self._serve_chunk(payload, msg.source)
            elif isinstance(payload, CollectiveContribution):
                self._collect(payload, msg.source)

    def _reliable_shutdown(self, dest: int, tag: int) -> Generator:
        ack_tag = self._next_reply_tag
        self._next_reply_tag += 1
        req = self.comm.irecv(source=dest, tag=ack_tag)
        self.comm.isend(Shutdown(ack_tag), dest=dest, tag=tag)
        timeout = self.config.retry_timeout
        attempts = 0
        while not req.event.triggered:
            yield AnyOf([req.event, self.rt.sim.timeout_event(timeout)])
            if req.event.triggered:
                return
            attempts += 1
            if attempts > self.config.retry_limit:
                return
            self.resilience.control_retries += 1
            self.comm.isend(Shutdown(ack_tag), dest=dest, tag=tag)
            timeout *= self.config.retry_backoff

    def _serve_chunk(self, payload: ChunkRequest, source: int) -> None:
        replay_key = (payload.worker_index, payload.pardo_pc, payload.activation)
        if payload.seq >= 0:
            cached = self._chunk_replay.get(replay_key)
            if cached is not None:
                seq, reply, nbytes = cached
                if payload.seq == seq:
                    # retried request whose reply (or request) was lost:
                    # replay the exact same chunk, never a fresh one
                    self.resilience.duplicates_ignored += 1
                    self.comm.isend(
                        reply, dest=source, tag=payload.reply_tag, nbytes=nbytes
                    )
                    return
                if payload.seq < seq:
                    self.resilience.duplicates_ignored += 1
                    return  # stale duplicate; its reply already went out
        stats = self.sched_stats
        hits0, steals0 = stats.locality_hits, stats.stolen_iterations
        chunk = self._next_chunk(payload)
        reply = ChunkReply(tuple(chunk))
        nbytes = 64 + _BYTES_PER_ITERATION * len(chunk)
        if payload.seq >= 0:
            self._chunk_replay[replay_key] = (payload.seq, reply, nbytes)
        self.comm.isend(reply, dest=source, tag=payload.reply_tag, nbytes=nbytes)
        self.chunks_served += 1
        tracer = self.config.tracer
        if tracer is not None and chunk and hasattr(tracer, "record_sched"):
            tracer.record_sched(
                self.rt.sim.now,
                payload.worker_index,
                payload.pardo_pc,
                len(chunk),
                stats.locality_hits - hits0,
                stats.stolen_iterations - steals0,
            )

    def _next_chunk(self, req: ChunkRequest) -> list[tuple[int, ...]]:
        key = (req.pardo_pc, req.activation)
        sched = self.schedulers.get(key)
        if sched is None:
            instr = self.rt.decoded.instructions[req.pardo_pc]
            _pardo_id, index_ids, conditions, _exit, get_pcs = instr.args
            scalars = None
            if conditions_read_scalars(conditions):
                if req.scalars is None:
                    raise SIPError(
                        "pardo where clause reads scalars but the chunk "
                        "request carried no scalar snapshot"
                    )
                scalars = req.scalars
            iterations = enumerate_pardo(
                self.rt.table, index_ids, conditions, scalars=scalars
            )
            preferred = None
            if self.config.scheduling == "locality":
                preferred = self._affinity_map(index_ids, get_pcs, iterations)
            sched = make_scheduler(
                self.config.scheduling,
                iterations,
                self.config.workers,
                self.config.chunk_factor,
                min_chunk=self.config.min_chunk,
                preferred=preferred,
                stats=self.sched_stats,
            )
            self.schedulers[key] = sched
            if scalars is not None:
                self._sched_scalars[key] = scalars
        elif req.scalars is not None:
            baseline = self._sched_scalars.get(key)
            if baseline is not None and req.scalars != baseline:
                # every worker reaches the pardo through the same
                # sequential prefix, so snapshots must agree; a mismatch
                # means the iteration space is not well defined
                raise SIPError(
                    f"workers disagree on the scalar state at pardo entry "
                    f"(pc {req.pardo_pc}, activation {req.activation}); "
                    "the iteration space is ambiguous"
                )
        return sched.next_chunk_for(req.worker_index)

    def _block_nbytes(self, bid: BlockId) -> int:
        n = self._nbytes_memo.get(bid)
        if n is None:
            n = self._nbytes_memo[bid] = block_nbytes(
                self.rt.block_shape(bid), self.rt.dtype
            )
        return n

    def _affinity_map(
        self,
        index_ids: tuple[int, ...],
        get_pcs: tuple[int, ...],
        iterations: list[tuple[int, ...]],
    ) -> list[int] | None:
        """Preferred worker per iteration, scored from block placement.

        For each iteration the pardo indices are bound and every
        get/request the body issues at pardo level is resolved; the
        owner of a distributed block earns ``affinity_owner_weight`` per
        byte (a get a worker serves to itself moves no bytes at all),
        and each recent cache holder earns ``affinity_replica_weight``
        per byte.  Gets whose operands also depend on inner-loop indices
        cannot be resolved here and are skipped -- correctly so, since
        those blocks are touched from every iteration.  Iterations with
        no placement signal round-robin over the workers.
        """
        workers = self.config.workers
        if workers <= 1 or not iterations:
            return None
        decoded = self.rt.decoded.instructions
        ops = [decoded[gpc].args[0] for gpc in get_pcs]
        if not ops:
            return None
        w_owner = self.config.affinity_owner_weight
        w_replica = self.config.affinity_replica_weight
        placements = self.rt.placements
        replicas = self.rt.replicas
        memo = self.config.fastpath
        preferred: list[int] = []
        for n, combo in enumerate(iterations):
            values = dict(zip(index_ids, combo))
            scores: dict[int, float] = {}
            for op in ops:
                try:
                    r = op.resolve(values, memo)
                except SIPError:
                    continue  # depends on an index bound inside the body
                bid = r.block_id
                nb = self._block_nbytes(bid)
                if w_owner > 0 and bid.array_id in placements:
                    owner = placements[bid.array_id].owner_index(bid.coords)
                    scores[owner] = scores.get(owner, 0.0) + w_owner * nb
                if w_replica > 0:
                    for holder in replicas.holders(bid):
                        scores[holder] = scores.get(holder, 0.0) + w_replica * nb
            if scores:
                preferred.append(min(scores, key=lambda w: (-scores[w], w)))
            else:
                preferred.append(n % workers)
        return preferred

    def _collect(self, payload: CollectiveContribution, source: int) -> None:
        if self.rt.resilient:
            if payload.seq in self._collective_results:
                # collective already completed; the worker's result was
                # lost in transit -- replay it
                self.resilience.duplicates_ignored += 1
                self.comm.isend(
                    CollectiveResult(self._collective_results[payload.seq]),
                    dest=source,
                    tag=payload.reply_tag,
                )
                return
            sources = self.collective_sources.get(payload.seq)
            if sources is not None and payload.worker_index in sources:
                # duplicate contribution while the collective is still
                # gathering; the original is already counted
                self.resilience.duplicates_ignored += 1
                return
        pending = self.collectives.setdefault(payload.seq, [])
        self.collective_sources.setdefault(payload.seq, {})[
            payload.worker_index
        ] = source
        pending.append(payload)
        if len(pending) == self.config.workers:
            total = self._reduce(pending)
            sources = self.collective_sources.pop(payload.seq)
            for p in pending:
                self.comm.isend(
                    CollectiveResult(total),
                    dest=sources[p.worker_index],
                    tag=p.reply_tag,
                )
            del self.collectives[payload.seq]
            if self.rt.resilient:
                self._collective_results[payload.seq] = total

    @staticmethod
    def _reduce(pending: list[CollectiveContribution]) -> float:
        """Sum contributions in an assignment-independent order.

        When every worker decomposed its scalar into a base plus
        per-iteration deltas, the sum folds bases in worker order and
        then deltas sorted by their canonical iteration key -- the same
        additions in the same order no matter which worker ran which
        iteration, so collectives are bitwise identical across
        scheduling policies.  Poisoned or legacy contributions fall back
        to the historical worker-order sum of full values.
        """
        ordered = sorted(pending, key=lambda p: p.worker_index)
        if any(p.deltas is None or p.poisoned for p in ordered):
            return sum(p.value for p in ordered)
        total = 0.0
        for p in ordered:
            total += p.base
        items: list[tuple[tuple, float]] = []
        for p in ordered:
            items.extend(p.deltas)
        items.sort(key=lambda kv: kv[0])
        for _key, delta in items:
            total += delta
        return total
