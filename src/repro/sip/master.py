"""The SIP master rank.

The master sets up the calculation (the dry run happens before
simulated time starts; see :mod:`repro.sip.dryrun`) and then serves
two request streams from the workers (paper, Section V-B):

* **pardo chunks** -- iterations are doled out in shrinking chunks
  (guided self-scheduling); each request costs the master a fixed CPU
  overhead, which is exactly the serialization term that caps strong
  scaling at very large worker counts (Fig. 6);
* **collective scalar sums** -- the SIAL ``collective`` statement.

When every worker has reported completion, the master shuts down the
service pumps and I/O servers.
"""

from __future__ import annotations

from typing import Generator

from ..simmpi import Timeout
from ..simmpi.comm import SimComm
from .config import SIPError
from .messages import (
    MASTER_TAG,
    SERVER_TAG,
    SERVICE_TAG,
    ChunkReply,
    ChunkRequest,
    CollectiveContribution,
    CollectiveResult,
    Shutdown,
    WorkerDone,
)
from .runtime import SharedRuntime
from .scheduler import GuidedScheduler, StaticScheduler, enumerate_pardo

__all__ = ["MasterProcess"]

# rough wire size of one iteration tuple in a chunk reply
_BYTES_PER_ITERATION = 16


class MasterProcess:
    def __init__(self, rt: SharedRuntime, comm: SimComm) -> None:
        self.rt = rt
        self.comm = comm
        self.config = rt.config
        self.schedulers: dict[tuple[int, int], object] = {}
        self.collectives: dict[int, list[CollectiveContribution]] = {}
        self.collective_sources: dict[int, dict[int, int]] = {}
        self.chunks_served = 0

    def run(self) -> Generator:
        done = 0
        while done < self.config.workers:
            msg = yield from self.comm.recv(tag=MASTER_TAG)
            payload = msg.payload
            if isinstance(payload, ChunkRequest):
                yield Timeout(self.config.machine.master_chunk_overhead)
                chunk = self._next_chunk(payload)
                reply = ChunkReply(tuple(chunk))
                self.comm.isend(
                    reply,
                    dest=msg.source,
                    tag=payload.reply_tag,
                    nbytes=64 + _BYTES_PER_ITERATION * len(chunk),
                )
                self.chunks_served += 1
            elif isinstance(payload, CollectiveContribution):
                self._collect(payload, msg.source)
            elif isinstance(payload, WorkerDone):
                done += 1
            else:
                raise SIPError(f"master got unexpected message {payload!r}")
        for rank in self.config.worker_ranks:
            self.comm.isend(Shutdown(), dest=rank, tag=SERVICE_TAG)
        for rank in self.config.server_ranks:
            self.comm.isend(Shutdown(), dest=rank, tag=SERVER_TAG)

    def _next_chunk(self, req: ChunkRequest) -> list[tuple[int, ...]]:
        key = (req.pardo_pc, req.activation)
        sched = self.schedulers.get(key)
        if sched is None:
            instr = self.rt.program.instructions[req.pardo_pc]
            _pardo_id, index_ids, conditions, _exit, _gets = instr.args
            iterations = enumerate_pardo(self.rt.table, index_ids, conditions)
            if self.config.scheduling == "static":
                sched = StaticScheduler(iterations, self.config.workers)
            else:
                sched = GuidedScheduler(
                    iterations, self.config.workers, self.config.chunk_factor
                )
            self.schedulers[key] = sched
        if isinstance(sched, StaticScheduler):
            return sched.next_chunk_for(req.worker_index)
        return sched.next_chunk()

    def _collect(self, payload: CollectiveContribution, source: int) -> None:
        pending = self.collectives.setdefault(payload.seq, [])
        self.collective_sources.setdefault(payload.seq, {})[
            payload.worker_index
        ] = source
        pending.append(payload)
        if len(pending) == self.config.workers:
            # deterministic order: sum by worker index
            total = sum(
                p.value for p in sorted(pending, key=lambda p: p.worker_index)
            )
            sources = self.collective_sources.pop(payload.seq)
            for p in pending:
                self.comm.isend(
                    CollectiveResult(total),
                    dest=sources[p.worker_index],
                    tag=p.reply_tag,
                )
            del self.collectives[payload.seq]
