"""Master-side pardo scheduling.

All parallelism in SIAL is the pardo loop; the master enumerates its
iteration space (the cross product of the index ranges filtered by the
``where`` clauses) and doles it out to workers in *chunks* whose size
decreases as the computation proceeds -- the guided self-scheduling
policy the paper compares to OpenMP's ``guided`` (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from math import ceil
from typing import Iterable, Sequence

from ..sial.bytecode import CompiledCondition, evaluate_condition
from .blocks import ResolvedIndexTable

__all__ = ["enumerate_pardo", "GuidedScheduler", "StaticScheduler", "make_scheduler"]


def enumerate_pardo(
    table: ResolvedIndexTable,
    index_ids: Sequence[int],
    conditions: Sequence[CompiledCondition],
    symbolics: Sequence[float] | None = None,
) -> list[tuple[int, ...]]:
    """All (ordered) iteration tuples of a pardo loop."""
    sym = list(symbolics) if symbolics is not None else table.symbolic_values
    ranges = [table[i].values() for i in index_ids]
    out: list[tuple[int, ...]] = []
    for combo in product(*ranges):
        values = dict(zip(index_ids, combo))
        if all(
            evaluate_condition(c, symbolics=sym, index_values=values)
            for c in conditions
        ):
            out.append(combo)
    return out


@dataclass
class GuidedScheduler:
    """Shrinking-chunk dole-out of one pardo's iterations.

    The first chunks are large (so dole-out overhead is amortized) and
    chunk size decreases with the remaining work (so the tail balances
    load): ``chunk = ceil(remaining / (chunk_factor * workers))``.
    """

    iterations: list[tuple[int, ...]]
    workers: int
    chunk_factor: int = 2
    min_chunk: int = 1
    _pos: int = 0
    chunks_served: int = 0

    def next_chunk(self) -> list[tuple[int, ...]]:
        remaining = len(self.iterations) - self._pos
        if remaining <= 0:
            return []
        size = max(self.min_chunk, ceil(remaining / (self.chunk_factor * self.workers)))
        chunk = self.iterations[self._pos : self._pos + size]
        self._pos += len(chunk)
        self.chunks_served += 1
        return chunk

    @property
    def done(self) -> bool:
        return self._pos >= len(self.iterations)


@dataclass
class StaticScheduler:
    """Ablation baseline: equal pre-partitioned chunks, one per worker.

    Worker ``w`` receives the ``w``-th contiguous slice on its first
    request and nothing afterwards -- classic static scheduling, which
    load-imbalances when iteration costs vary.
    """

    iterations: list[tuple[int, ...]]
    workers: int
    _served: set[int] = field(default_factory=set)

    def next_chunk_for(self, worker_index: int) -> list[tuple[int, ...]]:
        if worker_index in self._served:
            return []
        self._served.add(worker_index)
        n = len(self.iterations)
        per = ceil(n / self.workers) if n else 0
        lo = worker_index * per
        return self.iterations[lo : lo + per]


def make_scheduler(
    policy: str,
    iterations: list[tuple[int, ...]],
    workers: int,
    chunk_factor: int,
):
    if policy == "guided":
        return GuidedScheduler(iterations, workers, chunk_factor)
    if policy == "static":
        return StaticScheduler(iterations, workers)
    raise ValueError(f"unknown scheduling policy {policy!r}")
