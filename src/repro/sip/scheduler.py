"""Master-side pardo scheduling.

All parallelism in SIAL is the pardo loop; the master enumerates its
iteration space (the cross product of the index ranges filtered by the
``where`` clauses) and doles it out to workers in *chunks*.  Three
policies exist:

* ``guided`` -- shrinking chunks from one shared queue, the paper's
  guided self-scheduling (Section V-B);
* ``static`` -- one equal contiguous slice per worker (ablation
  baseline);
* ``locality`` -- per-worker affinity queues built from the placement
  of the blocks each iteration gets, with work stealing when a queue
  drains, so data affinity never sacrifices the guided policy's tail
  balance.

Every policy serves each iteration exactly once, and because pardo
iterations are independent (and collective sums are canonicalized by
iteration, see :mod:`repro.sip.master`), results are bitwise identical
across policies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import product
from math import ceil
from typing import Optional, Sequence

from ..sial.bytecode import CompiledCondition, evaluate_condition
from .blocks import ResolvedIndexTable

__all__ = [
    "enumerate_pardo",
    "conditions_read_scalars",
    "SchedStats",
    "GuidedScheduler",
    "StaticScheduler",
    "LocalityScheduler",
    "make_scheduler",
]


def conditions_read_scalars(
    conditions: Sequence[CompiledCondition],
) -> bool:
    """Whether any ``where`` clause references a program scalar.

    The analyzer rejects scalars in where clauses for programs compiled
    from source, but hand-built bytecode may carry them; such a pardo's
    iteration space depends on worker-side scalar state, so the chunk
    request must ship a snapshot for the master to evaluate against.
    """
    return any(
        item[0] == "scalar"
        for c in conditions
        for rpn in (c.left_rpn, c.right_rpn)
        for item in rpn
    )


def enumerate_pardo(
    table: ResolvedIndexTable,
    index_ids: Sequence[int],
    conditions: Sequence[CompiledCondition],
    symbolics: Sequence[float] | None = None,
    scalars: Sequence[float] | None = None,
) -> list[tuple[int, ...]]:
    """All (ordered) iteration tuples of a pardo loop."""
    sym = list(symbolics) if symbolics is not None else table.symbolic_values
    scal = list(scalars) if scalars is not None else None
    ranges = [table[i].values() for i in index_ids]
    out: list[tuple[int, ...]] = []
    for combo in product(*ranges):
        values = dict(zip(index_ids, combo))
        if all(
            evaluate_condition(c, scalars=scal, symbolics=sym, index_values=values)
            for c in conditions
        ):
            out.append(combo)
    return out


@dataclass
class SchedStats:
    """Dole-out counters, shared by every scheduler of one run."""

    policy: str = "guided"
    chunks: int = 0
    iterations: int = 0
    # locality policy only: iterations served to their preferred worker
    # vs elsewhere, and steal events when a worker's own queue drained
    locality_hits: int = 0
    locality_misses: int = 0
    steals: int = 0
    stolen_iterations: int = 0

    @property
    def locality_rate(self) -> float:
        total = self.locality_hits + self.locality_misses
        return self.locality_hits / total if total else 0.0


@dataclass
class GuidedScheduler:
    """Shrinking-chunk dole-out of one pardo's iterations.

    The first chunks are large (so dole-out overhead is amortized) and
    chunk size decreases with the remaining work (so the tail balances
    load): ``chunk = ceil(remaining / (chunk_factor * workers))``.
    """

    iterations: list[tuple[int, ...]]
    workers: int
    chunk_factor: int = 2
    min_chunk: int = 1
    stats: SchedStats = field(default_factory=SchedStats)
    _pos: int = 0
    chunks_served: int = 0

    def next_chunk(self) -> list[tuple[int, ...]]:
        remaining = len(self.iterations) - self._pos
        if remaining <= 0:
            return []
        size = max(self.min_chunk, ceil(remaining / (self.chunk_factor * self.workers)))
        chunk = self.iterations[self._pos : self._pos + size]
        self._pos += len(chunk)
        self.chunks_served += 1
        self.stats.chunks += 1
        self.stats.iterations += len(chunk)
        return chunk

    def next_chunk_for(self, worker_index: int) -> list[tuple[int, ...]]:
        return self.next_chunk()

    @property
    def done(self) -> bool:
        return self._pos >= len(self.iterations)


@dataclass
class StaticScheduler:
    """Ablation baseline: equal pre-partitioned chunks, one per worker.

    Worker ``w`` receives the ``w``-th contiguous slice on its first
    request and nothing afterwards -- classic static scheduling, which
    load-imbalances when iteration costs vary.
    """

    iterations: list[tuple[int, ...]]
    workers: int
    stats: SchedStats = field(default_factory=SchedStats)
    _served: set[int] = field(default_factory=set)

    def next_chunk_for(self, worker_index: int) -> list[tuple[int, ...]]:
        if worker_index in self._served:
            return []
        self._served.add(worker_index)
        n = len(self.iterations)
        per = ceil(n / self.workers) if n else 0
        lo = worker_index * per
        chunk = self.iterations[lo : lo + per]
        if chunk:
            self.stats.chunks += 1
            self.stats.iterations += len(chunk)
        return chunk


@dataclass
class LocalityScheduler:
    """Affinity queues per worker, with guided chunk sizing and stealing.

    ``preferred[i]`` names the worker with the best data affinity for
    ``iterations[i]`` (the master scores iterations against block
    placement; see :meth:`MasterProcess._affinity_map`).  Each worker is
    served guided-sized chunks from its own queue, in enumeration order.
    When a worker's queue drains while others still hold work, it
    *steals* half of the largest foreign queue -- taken from that
    queue's tail, i.e. the iterations its home worker would reach last
    and is least likely to have warmed caches for ("coldest first") --
    so the tail stays balanced exactly like guided scheduling.
    """

    iterations: list[tuple[int, ...]]
    workers: int
    chunk_factor: int = 2
    min_chunk: int = 1
    preferred: Optional[list[int]] = None
    stats: SchedStats = field(default_factory=SchedStats)

    def __post_init__(self) -> None:
        n = len(self.iterations)
        home = self.preferred
        if home is None:
            home = [i % self.workers for i in range(n)]
        if len(home) != n:
            raise ValueError(
                f"preferred map has {len(home)} entries for {n} iterations"
            )
        if any(not (0 <= w < self.workers) for w in home):
            raise ValueError("preferred worker index out of range")
        self._home = list(home)
        self._queues: list[deque[int]] = [deque() for _ in range(self.workers)]
        for i, w in enumerate(self._home):
            self._queues[w].append(i)
        self._remaining = n

    @property
    def done(self) -> bool:
        return self._remaining <= 0

    def next_chunk_for(self, worker_index: int) -> list[tuple[int, ...]]:
        if self._remaining <= 0:
            return []
        queue = self._queues[worker_index]
        if not queue:
            self._steal_into(worker_index)
        size = max(
            self.min_chunk,
            ceil(self._remaining / (self.chunk_factor * self.workers)),
        )
        taken: list[int] = []
        while queue and len(taken) < size:
            taken.append(queue.popleft())
        if not taken:
            return []
        self._remaining -= len(taken)
        hits = sum(1 for i in taken if self._home[i] == worker_index)
        self.stats.chunks += 1
        self.stats.iterations += len(taken)
        self.stats.locality_hits += hits
        self.stats.locality_misses += len(taken) - hits
        return [self.iterations[i] for i in taken]

    def _steal_into(self, thief: int) -> None:
        victim = max(
            (w for w in range(self.workers) if w != thief),
            key=lambda w: (len(self._queues[w]), -w),
            default=None,
        )
        if victim is None or not self._queues[victim]:
            return
        source = self._queues[victim]
        count = ceil(len(source) / 2)
        # pop from the victim's tail (its coldest work), but keep the
        # moved run in enumeration order for the thief
        moved = [source.pop() for _ in range(count)]
        moved.reverse()
        self._queues[thief].extend(moved)
        self.stats.steals += 1
        self.stats.stolen_iterations += count


def make_scheduler(
    policy: str,
    iterations: list[tuple[int, ...]],
    workers: int,
    chunk_factor: int,
    min_chunk: int = 1,
    preferred: Optional[list[int]] = None,
    stats: Optional[SchedStats] = None,
):
    if stats is None:
        stats = SchedStats(policy=policy)
    if policy == "guided":
        return GuidedScheduler(
            iterations, workers, chunk_factor, min_chunk, stats=stats
        )
    if policy == "static":
        return StaticScheduler(iterations, workers, stats=stats)
    if policy == "locality":
        return LocalityScheduler(
            iterations,
            workers,
            chunk_factor,
            min_chunk,
            preferred=preferred,
            stats=stats,
        )
    raise ValueError(f"unknown scheduling policy {policy!r}")
