"""Helpers for the serialization / checkpoint external store.

The SIAL statements ``blocks_to_list`` / ``list_to_blocks`` serialize
distributed arrays to and from an *external store* (a plain dict shared
between runs), and ``checkpoint`` snapshots every distributed array
plus the scalar state.  This is the facility the paper describes for
passing data between different SIAL programs and for restarting
interrupted computations (Section IV-C).

These helpers convert between the store's block format and full
ndarrays so test code and applications can seed or inspect stores.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..sial.bytecode import CompiledProgram
from .blocks import Block, ResolvedIndexTable
from .config import SIPError

__all__ = [
    "store_to_array",
    "array_to_store",
    "checkpoint_scalars",
    "has_checkpoint",
    "checkpoint_seq",
    "save_store",
    "load_store",
]


def has_checkpoint(store: dict[str, Any]) -> bool:
    """Whether a ``checkpoint`` statement ever completed into this store."""
    return "__checkpoint_seq__" in store


def checkpoint_seq(store: dict[str, Any]) -> int:
    """Sequence number of the last completed checkpoint (0 = none)."""
    return int(store.get("__checkpoint_seq__", 0))


def store_to_array(
    store: dict[str, Any],
    program: CompiledProgram,
    table: ResolvedIndexTable,
    name: str,
) -> np.ndarray:
    """Assemble the serialized blocks of one array into a full ndarray."""
    entry = store.get(name.lower())
    if entry is None:
        raise SIPError(f"array {name!r} is not in the external store")
    array_id = program.array_id(name)
    desc = program.array_table[array_id]
    full = np.zeros(table.array_shape(desc), dtype=np.float64)
    for coords, data in entry.items():
        if not isinstance(data, np.ndarray):
            raise SIPError(
                f"store for {name!r} holds shapes only (model-mode run)"
            )
        slices = tuple(
            slice(table[i].segment(c).start, table[i].segment(c).stop)
            for i, c in zip(desc.index_ids, coords)
        )
        full[slices] = data
    return full


def array_to_store(
    store: dict[str, Any],
    program: CompiledProgram,
    table: ResolvedIndexTable,
    name: str,
    value: np.ndarray,
) -> None:
    """Serialize a full ndarray into the store's block format."""
    from itertools import product

    array_id = program.array_id(name)
    desc = program.array_table[array_id]
    value = np.asarray(value, dtype=np.float64)
    expected = table.array_shape(desc)
    if value.shape != expected:
        raise SIPError(
            f"array {name!r} store input has shape {value.shape}, "
            f"declared {expected}"
        )
    blocks: dict[tuple[int, ...], np.ndarray] = {}
    spaces = [range(1, table[i].n_segments + 1) for i in desc.index_ids]
    for coords in product(*spaces):
        slices = tuple(
            slice(table[i].segment(c).start, table[i].segment(c).stop)
            for i, c in zip(desc.index_ids, coords)
        )
        blocks[coords] = np.ascontiguousarray(value[slices])
    store[name.lower()] = blocks


def checkpoint_scalars(store: dict[str, Any]) -> list[float]:
    """The scalar snapshot saved by the last ``checkpoint`` statement."""
    scalars = store.get("__scalars__")
    if scalars is None:
        raise SIPError("no checkpoint scalars in the external store")
    return list(scalars)


# -- on-disk persistence -------------------------------------------------
#
# The external store is an in-memory dict for single-process use; a real
# restart (new process after a crash) needs it on disk.  The format is a
# single .npz: array blocks keyed "<array>/<c1,c2,...>", scalar and
# sequence metadata under "__"-prefixed keys.
def save_store(store: dict[str, Any], path: str) -> None:
    """Persist an external store (checkpoint) to an .npz file."""
    payload: dict[str, np.ndarray] = {}
    for name, entry in store.items():
        if name == "__scalars__":
            payload["__scalars__"] = np.asarray(entry, dtype=np.float64)
        elif name == "__checkpoint_seq__":
            payload["__checkpoint_seq__"] = np.asarray([entry])
        elif isinstance(entry, dict):
            for coords, data in entry.items():
                if not isinstance(data, np.ndarray):
                    raise SIPError(
                        f"store for {name!r} holds shapes only (model-mode "
                        "run); nothing to persist"
                    )
                key = f"{name}/{','.join(str(c) for c in coords)}"
                payload[key] = data
        else:
            raise SIPError(f"unrecognized store entry {name!r}")
    np.savez_compressed(path, **payload)


def load_store(path: str) -> dict[str, Any]:
    """Load an external store previously written by :func:`save_store`."""
    store: dict[str, Any] = {}
    with np.load(path) as data:
        for key in data.files:
            if key == "__scalars__":
                store["__scalars__"] = list(data[key])
            elif key == "__checkpoint_seq__":
                store["__checkpoint_seq__"] = int(data[key][0])
            else:
                name, _, coord_text = key.partition("/")
                coords = tuple(int(c) for c in coord_text.split(","))
                store.setdefault(name, {})[coords] = data[key]
    return store
