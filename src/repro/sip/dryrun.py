"""Dry-run memory-feasibility analysis.

Before committing supercomputer time, the master inspects the program
and estimates each worker's memory requirement from the number of
workers, the array sizes, and the distributed data layout (paper,
Section V-B).  If the computation cannot fit, the report says so *and*
states how many workers would be sufficient -- exactly the user
experience the paper describes.

The estimate covers, per worker:

* replicated static arrays (full size each),
* the largest owned share of every distributed array (exact, from the
  placement function),
* one live block per temp array and per local array (the block-stack
  working set),
* the remote-block cache reserve (``cache_blocks`` x largest block).

Their sum is the *no-spill requirement*: with that much memory no
block ever leaves RAM.  The report also states the *pinned-only
floor* -- the blocks one instruction must hold resident at once plus
in-flight transfers -- which is what a spill-enabled run actually
needs; between floor and requirement, the MemoryManager's victim
cascade trades scratch-disk traffic for the shortfall.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, prod

import numpy as np

from ..sial.bytecode import CompiledProgram
from .blocks import ResolvedIndexTable
from .config import SIPConfig, SIPError

__all__ = ["DryRunReport", "dry_run", "InfeasibleComputation"]


class InfeasibleComputation(SIPError):
    """The computation does not fit in the configured memory."""


# blocks one instruction can pin at once (destination + two sources)
# plus headroom for an in-flight demand fetch, an incoming put being
# applied by the service pump, and one spare for a fault-in in progress
PINNED_FLOOR_BLOCKS = 6


@dataclass
class DryRunReport:
    feasible: bool
    workers: int
    budget_bytes: float
    static_bytes: int
    distributed_max_bytes: int
    temp_bytes: int
    local_bytes: int
    cache_reserve_bytes: int
    array_bytes: dict[str, int]
    required_workers: int
    pinned_floor_bytes: int = 0
    spill: bool = False

    @property
    def per_worker_bytes(self) -> int:
        return (
            self.static_bytes
            + self.distributed_max_bytes
            + self.temp_bytes
            + self.local_bytes
            + self.cache_reserve_bytes
        )

    @property
    def spill_headroom_bytes(self) -> int:
        """Budget left above the pinned-only floor (what spill can use)."""
        return int(self.budget_bytes - self.pinned_floor_bytes)

    def report(self) -> str:
        lines = [
            f"dry run: {self.workers} workers, "
            f"{self.budget_bytes / 1e6:.1f} MB per worker",
            "  pool (resident blocks):",
            f"    static (replicated):     {self.static_bytes:>14d} B",
            f"    distributed (max owned): {self.distributed_max_bytes:>14d} B",
            f"    temp working set:        {self.temp_bytes:>14d} B",
            f"    local working set:       {self.local_bytes:>14d} B",
            f"  block cache reserve:     {self.cache_reserve_bytes:>14d} B",
            f"  total per worker:        {self.per_worker_bytes:>14d} B "
            "(no-spill requirement)",
            f"  pinned-only floor:       {self.pinned_floor_bytes:>14d} B",
            f"  spill headroom:          {self.spill_headroom_bytes:>14d} B "
            f"(spill {'enabled' if self.spill else 'disabled'})",
        ]
        for name, nbytes in sorted(self.array_bytes.items()):
            lines.append(f"    array {name:<12s} {nbytes:>14d} B total")
        if self.feasible:
            lines.append("  FEASIBLE")
        elif self.spill:
            lines.append(
                "  INFEASIBLE: the pinned-only floor exceeds the budget; "
                "even spilling everything evictable cannot help"
            )
        else:
            lines.append(
                f"  INFEASIBLE: would need at least {self.required_workers} "
                "workers at this memory size"
            )
        return "\n".join(lines)


def dry_run(
    program: CompiledProgram, config: SIPConfig, table: ResolvedIndexTable
) -> DryRunReport:
    """Estimate per-worker memory and feasibility for this configuration."""
    itemsize = np.dtype(config.dtype).itemsize
    static_bytes = 0
    temp_bytes = 0
    local_bytes = 0
    dist_totals: list[int] = []
    dist_max_block = 0
    array_bytes: dict[str, int] = {}
    max_block = 0

    for desc in program.array_table:
        dims = [table[i] for i in desc.index_ids]
        total = prod((d.n_elements for d in dims), start=1) * itemsize
        largest_block = prod(
            (max((s.length for s in d.segments), default=d.n_elements) for d in dims),
            start=1,
        ) * itemsize
        array_bytes[desc.name] = total
        max_block = max(max_block, largest_block)
        if desc.kind == "static":
            static_bytes += total
        elif desc.kind == "temp":
            temp_bytes += largest_block
        elif desc.kind == "local":
            local_bytes += largest_block
        elif desc.kind == "distributed":
            dist_totals.append(total)
            dist_max_block = max(dist_max_block, largest_block)
        # served arrays live on the I/O servers' disks, not worker RAM

    cache_reserve = config.cache_blocks * max_block
    pinned_floor = PINNED_FLOOR_BLOCKS * max_block

    def dist_share(workers: int) -> int:
        # owned share: ceil-split of each array plus one block of slack
        # for placement imbalance
        return sum(ceil(t / workers) + dist_max_block for t in dist_totals)

    per_worker = (
        static_bytes
        + dist_share(config.workers)
        + temp_bytes
        + local_bytes
        + cache_reserve
    )
    budget = config.memory_budget
    if config.spill:
        # with spill, only what must stay pinned at once has to fit;
        # everything else can live on scratch between touches
        feasible = pinned_floor <= budget
    else:
        feasible = per_worker <= budget

    fixed = static_bytes + temp_bytes + local_bytes + cache_reserve
    if fixed >= budget:
        required = -1  # no worker count can help
    else:
        required = 1
        total_dist = sum(dist_totals)
        head = budget - fixed - dist_max_block * max(1, len(dist_totals))
        if head > 0:
            required = max(1, ceil(total_dist / head))
        else:
            required = -1

    return DryRunReport(
        feasible=feasible,
        workers=config.workers,
        budget_bytes=budget,
        static_bytes=static_bytes,
        distributed_max_bytes=dist_share(config.workers),
        temp_bytes=temp_bytes,
        local_bytes=local_bytes,
        cache_reserve_bytes=cache_reserve,
        array_bytes=array_bytes,
        required_workers=required,
        pinned_floor_bytes=pinned_floor,
        spill=config.spill,
    )
