"""The block-transfer engine: every in-flight block movement of one rank.

Before this module existed the runtime had three parallel copies of the
block-movement discipline -- the worker interpreter hand-rolled
pending-cache insertion and arrival waits, the lookahead prefetcher
duplicated the cache-full guard, and the I/O server re-implemented its
own variant for disk loads and write-backs.  The
:class:`BlockTransferEngine` consolidates all of it behind one request
table per rank:

* **coalescing** -- a second get/prefetch/request for a block already in
  flight attaches a waiter to the existing pending cache entry instead
  of issuing a new wire message (counted in ``BlockIOStats.coalesced``);
* **unified pending-cache insertion** -- only the engine (and the cache
  it drives) calls ``insert_pending``/``fulfil``;
* **backpressure** -- one :meth:`BlockTransferEngine.headroom` predicate
  bounds speculative fetches (replacing the duplicated
  ``pending_count >= capacity - 2`` guards), while demand fetches wait
  for an in-flight arrival to free a slot;
* **canonical accumulation** -- the '+=' contributions buffered against
  owned/served blocks live in the engine's :class:`AccumLedger` and are
  folded sorted by their sender-side order key, which is what keeps
  results bitwise identical across backends and worker counts.

The engine is transport-agnostic: it talks to a
:class:`~repro.sip.transport.CommEndpoint`, so the simulated world and
the multiprocess transport sit below it unchanged.  Clients are the VM
interpreter, the lookahead prefetcher, the locality scheduler's
ReplicaMap (via :attr:`on_issue`), the memory manager's fault-in/spill
paths (via :meth:`note_fault_in`/:meth:`note_spill`) and the I/O
server's read/write-back machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from .blocks import Block, BlockId
from .config import SIPError
from .messages import (
    SERVER_TAG,
    SERVICE_TAG,
    BlockReply,
    GetBlock,
    PrepareBlock,
    PutBlock,
    RequestBlock,
    message_nbytes,
    snapshot_for_transport,
)

__all__ = ["AccumLedger", "BlockIOStats", "BlockTransferEngine"]


@dataclass
class BlockIOStats:
    """Counters for every block movement an engine mediated."""

    issued_gets: int = 0  # GetBlock messages put on the wire
    issued_requests: int = 0  # RequestBlock messages put on the wire
    coalesced: int = 0  # fetches satisfied by attaching to an in-flight one
    waiters: int = 0  # demand acquires that blocked on an arrival
    waiter_peak: int = 0  # most waiters ever attached to one in-flight block
    in_flight_peak: int = 0  # largest request table this engine ever held
    backpressure_stalls: int = 0  # demand fetches that waited for cache space
    hint_drops: int = 0  # speculative fetches dropped for lack of headroom
    puts_posted: int = 0  # PutBlock messages put on the wire
    prepares_posted: int = 0  # PrepareBlock messages put on the wire
    replies_served: int = 0  # BlockReply messages sent by this rank
    disk_loads: int = 0  # server-side cache fills from disk (or zero-fill)
    writebacks: int = 0  # server-side write-backs started
    writebacks_superseded: int = 0  # write-backs dropped for a fresher one
    accums_buffered: int = 0  # '+=' contributions parked in the ledger
    accum_folds: int = 0  # ledger folds applied (in canonical key order)
    fault_ins: int = 0  # spilled blocks faulted back in by the memman
    spills: int = 0  # resident blocks parked on scratch by the memman

    @property
    def issued(self) -> int:
        return self.issued_gets + self.issued_requests

    def add(self, other: "BlockIOStats") -> None:
        """Merge another rank's counters into this one (peaks take max)."""
        self.issued_gets += other.issued_gets
        self.issued_requests += other.issued_requests
        self.coalesced += other.coalesced
        self.waiters += other.waiters
        self.waiter_peak = max(self.waiter_peak, other.waiter_peak)
        self.in_flight_peak = max(self.in_flight_peak, other.in_flight_peak)
        self.backpressure_stalls += other.backpressure_stalls
        self.hint_drops += other.hint_drops
        self.puts_posted += other.puts_posted
        self.prepares_posted += other.prepares_posted
        self.replies_served += other.replies_served
        self.disk_loads += other.disk_loads
        self.writebacks += other.writebacks
        self.writebacks_superseded += other.writebacks_superseded
        self.accums_buffered += other.accums_buffered
        self.accum_folds += other.accum_folds
        self.fault_ins += other.fault_ins
        self.spills += other.spills


class AccumLedger:
    """Canonical '+=' contribution buffer for one rank.

    Accumulate puts/prepares are buffered with a sender-side order key
    and folded sorted by that key at the first read (or at run end), so
    the floating-point sum is independent of message arrival order --
    the block analogue of the collective scalar ledger, and what makes
    the multiprocess backend bitwise identical to the simulator.
    """

    def __init__(self, stats: Optional[BlockIOStats] = None) -> None:
        self._pending: dict[BlockId, list[tuple[tuple, Block]]] = {}
        self.stats = stats or BlockIOStats()
        self._seq = 0

    def __contains__(self, bid: BlockId) -> bool:
        return bid in self._pending

    def __bool__(self) -> bool:
        return bool(self._pending)

    def pending_ids(self) -> list[BlockId]:
        return list(self._pending)

    def next_key(self, iter_key: Optional[tuple], worker_index: int) -> tuple:
        """Canonical ordering key for a '+=' put/prepare contribution.

        Inside a pardo the key leads with the iteration identity, so the
        fold order matches the iteration space no matter which worker ran
        which iteration; outside one it leads with the worker index (all
        workers execute the same SPMD statement).  The trailing per-sender
        counter only breaks ties *within* one iteration, where it follows
        program order on a single worker in every backend.
        """
        self._seq += 1
        if iter_key is not None:
            pardo_id, activation, combo = iter_key
            return (0, pardo_id, activation, combo, self._seq)
        return (1, worker_index, self._seq)

    def buffer(self, bid: BlockId, key: tuple, block: Block) -> None:
        self._pending.setdefault(bid, []).append((key, block))
        self.stats.accums_buffered += 1

    def discard(self, bid: BlockId) -> None:
        """Drop buffered contributions (an overwrite supersedes them)."""
        self._pending.pop(bid, None)

    def pop_sorted(self, bid: BlockId) -> list[tuple[tuple, Block]]:
        """Detach ``bid``'s contributions, sorted in canonical key order."""
        pending = self._pending.pop(bid, None)
        if not pending:
            return []
        pending.sort(key=lambda kv: kv[0])
        self.stats.accum_folds += 1
        return pending

    def fold_into(self, bid: BlockId, block: Block) -> bool:
        """Apply buffered contributions to ``block`` in canonical order.

        The caller is responsible for the copy-on-write barrier (and any
        touch/dirty bookkeeping) around the target block.
        """
        pending = self.pop_sorted(bid)
        if not pending:
            return False
        if block.data is not None:
            for _key, inc in pending:
                if inc.data is not None:
                    block.data[...] += inc.data
        return True


@dataclass
class _InFlight:
    """One outstanding block movement in the engine's request table."""

    kind: str  # "get" | "request" | "load"
    arrival: object  # event fired when the block lands in the cache
    waiters: int = 0


class BlockTransferEngine:
    """Owns every in-flight block movement for one rank.

    ``port`` is the owning rank object (a ``WorkerProcess`` or
    ``IOServerProcess``); the engine reads its ``sim``, ``comm``,
    ``cache``, ``memman`` and ``rt`` attributes, plus -- on the worker
    fetch/post paths only -- ``worker_index``, ``epoch``,
    ``served_epoch``, ``next_tag()``, ``next_msg_seq()`` and
    ``spawn_retry_monitor()``.
    """

    def __init__(
        self,
        port,
        *,
        reserve: int = 2,
        max_in_flight: Optional[int] = None,
    ) -> None:
        self.port = port
        self.sim = port.sim
        self.comm = port.comm
        self.cache = port.cache
        self.memman = getattr(port, "memman", None)
        self.rt = port.rt
        self.reserve = reserve
        self.max_in_flight = max_in_flight
        self.stats = BlockIOStats()
        self.accums = AccumLedger(self.stats)
        self._inflight: dict[BlockId, _InFlight] = {}
        self.ever_fetched: set[BlockId] = set()
        # fire-and-forget write acks still outstanding (drained at
        # barriers and at run end so every write lands before it counts)
        self.outstanding_put_acks: list = []
        self.outstanding_prepare_acks: list = []
        # server-side write-back version ledger: a completed write-back
        # only owns the disk image if no fresher one was started since
        self._writeback_version: dict[BlockId, int] = {}
        # broadcast event: "an entry just became evictable" -- server
        # back-pressure when the cache is full of dirty/pending blocks
        self._evictable_signal = None
        # hook invoked with the BlockId whenever a wire fetch is issued
        # (the locality scheduler's ReplicaMap subscribes here)
        self.on_issue: Optional[Callable[[BlockId], None]] = None

    # -- request-table introspection --------------------------------------
    @property
    def in_flight_count(self) -> int:
        return len(self._inflight)

    def in_flight(self, bid: BlockId) -> bool:
        return bid in self._inflight

    # -- backpressure ------------------------------------------------------
    def headroom(self) -> bool:
        """Whether a *speculative* fetch may be issued right now.

        The single backpressure predicate for every prefetch path:
        leaves ``reserve`` cache slots free for demand fetches, and
        optionally bounds the request table at ``max_in_flight``.
        """
        if (
            self.max_in_flight is not None
            and len(self._inflight) >= self.max_in_flight
        ):
            return False
        return self.cache.pending_count < self.cache.capacity - self.reserve

    # -- worker fetch paths ------------------------------------------------
    def hint(self, bid: BlockId, kind: str, *, mark_refetch: bool = True) -> bool:
        """Speculative fetch: issue early, never wait, never fault.

        Returns False when the hint had to be dropped (cache momentarily
        full of in-flight blocks); the demand access that follows fetches
        with backpressure.  A hint for a block already cached or already
        in flight is a success -- the in-flight case is the coalesced
        duplicate the request table exists to absorb.
        """
        entry = self.cache.lookup(bid, touch=False)
        if entry is not None:
            if entry.pending:
                self.stats.coalesced += 1
            return True
        if mark_refetch and bid in self.ever_fetched:
            self.cache.mark_refetch(bid)
        try:
            self._issue(bid, kind)
        except SIPError:
            self.stats.hint_drops += 1
            return False
        return True

    def acquire(self, bid: BlockId, kind: str, wait) -> Generator:
        """Demand read: return the ready block, waiting/refetching as needed.

        ``wait`` is the port's accounting wait (``event -> Generator``),
        so time blocked here lands in the busy/wait profile.
        """
        entry = self.cache.lookup(bid)
        if entry is None:
            # miss: never requested, or evicted before use -> refetch
            if bid in self.ever_fetched:
                self.cache.mark_refetch(bid)
            entry = yield from self._issue_with_backpressure(bid, kind, wait)
            self.cache.record_use(bid, hit=False)
        else:
            if entry.pending:
                self.stats.coalesced += 1
            self.cache.record_use(bid, hit=not entry.pending)
        if entry.pending:
            self._note_waiter(bid)
            yield from wait(entry.arrival)
            entry = self.cache.lookup(bid)
            if entry is None or entry.pending:
                # evicted between arrival and resume: refetch synchronously
                self.cache.mark_refetch(bid)
                entry = yield from self._issue_with_backpressure(bid, kind, wait)
                self._note_waiter(bid)
                yield from wait(entry.arrival)
                entry = self.cache.lookup(bid)
                if entry is None or entry.block is None:
                    raise SIPError(
                        f"block {bid} thrashed out of the cache; increase "
                        "cache_blocks or reduce prefetch_depth"
                    )
        self.cache.record_use(bid, hit=True)  # mark used for eviction stats
        self.cache.stats.hits -= 1  # the extra record_use is bookkeeping only
        return entry.block

    def _note_waiter(self, bid: BlockId) -> None:
        self.stats.waiters += 1
        inf = self._inflight.get(bid)
        if inf is not None:
            inf.waiters += 1
            if inf.waiters > self.stats.waiter_peak:
                self.stats.waiter_peak = inf.waiters

    def _issue_with_backpressure(self, bid: BlockId, kind: str, wait) -> Generator:
        """Issue a fetch, waiting for cache space when it is full of
        in-flight blocks (demand fetches outrank prefetches)."""
        memman = self.memman
        while True:
            try:
                # a demand fetch may spill for cache headroom; speculative
                # prefetch inserts only ever drop clean replicas
                if memman is not None:
                    memman.cache_spill_ok = True
                try:
                    return self._issue(bid, kind)
                finally:
                    if memman is not None:
                        memman.cache_spill_ok = False
            except SIPError:
                pending = self.cache.any_pending_arrival()
                if pending is None:
                    raise
                self.stats.backpressure_stalls += 1
                yield from wait(pending)

    def _issue(self, bid: BlockId, kind: str):
        """Put one fetch on the wire and register it in the request table.

        Raises :class:`SIPError` when the cache cannot take another
        pending entry (full of pinned/pending/dirty blocks).
        """
        port = self.port
        if kind == "get":
            dest = self.rt.owner_rank(bid)
            arrival = self.sim.event(name=f"arrive {bid}")
        else:
            dest = self.rt.server_rank_for(bid)
            arrival = self.sim.event(name=f"arrive-served {bid}")
        reply_tag = port.next_tag()
        entry = self.cache.insert_pending(bid, arrival)
        self._inflight[bid] = _InFlight(kind=kind, arrival=arrival)
        if len(self._inflight) > self.stats.in_flight_peak:
            self.stats.in_flight_peak = len(self._inflight)
        req = self.comm.irecv(source=dest, tag=reply_tag)

        def on_reply(ev) -> None:
            self._complete(bid, ev.value.payload.block, arrival)

        req.event.add_callback(on_reply)
        if kind == "get":
            payload = GetBlock(bid, reply_tag, port.worker_index, port.epoch)
            send_tag = SERVICE_TAG
            self.stats.issued_gets += 1
        else:
            payload = RequestBlock(
                bid, reply_tag, port.worker_index, port.served_epoch
            )
            send_tag = SERVER_TAG
            self.stats.issued_requests += 1

        def send() -> None:
            self.comm.isend(payload, dest=dest, tag=send_tag)

        send()
        port.spawn_retry_monitor(arrival, send, "fetch_retries", kind)
        self.ever_fetched.add(bid)
        if self.on_issue is not None:
            self.on_issue(bid)
        return entry

    def _complete(self, bid: BlockId, block: Block, arrival) -> None:
        """A fetched payload landed: fill the cache entry, wake waiters."""
        self._inflight.pop(bid, None)
        self.cache.fulfil(bid, block)
        arrival.succeed(None)

    # -- worker write paths ------------------------------------------------
    def snapshot(self, block: Block) -> Block:
        """Transport snapshot of a block (zero-copy share when enabled)."""
        return snapshot_for_transport(block, self.rt.cow_enabled, self.rt.cow)

    def post_put(
        self, bid: BlockId, op: str, src_block: Block, accum_key: Optional[tuple]
    ) -> None:
        """Fire a PutBlock at the owning worker; its ack joins the
        outstanding ledger drained at barriers and run end."""
        port = self.port
        owner = self.rt.owner_rank(bid)
        ack_tag = port.next_tag()
        req = self.comm.irecv(source=owner, tag=ack_tag)
        self.outstanding_put_acks.append(req.event)
        payload = PutBlock(
            bid,
            op,
            self.snapshot(src_block),
            port.worker_index,
            port.epoch,
            ack_tag,
            port.next_msg_seq(),
            accum_key,
        )

        def send() -> None:
            self.comm.isend(
                payload, dest=owner, tag=SERVICE_TAG, nbytes=message_nbytes(payload)
            )

        send()
        port.spawn_retry_monitor(req.event, send, "put_retries", "put-ack")
        self.stats.puts_posted += 1

    def post_prepare(
        self, bid: BlockId, op: str, src_block: Block, accum_key: Optional[tuple]
    ) -> None:
        """Fire a PrepareBlock at the serving I/O rank (ack ledgered)."""
        port = self.port
        server = self.rt.server_rank_for(bid)
        ack_tag = port.next_tag()
        req = self.comm.irecv(source=server, tag=ack_tag)
        self.outstanding_prepare_acks.append(req.event)
        payload = PrepareBlock(
            bid,
            op,
            self.snapshot(src_block),
            port.worker_index,
            port.served_epoch,
            ack_tag,
            port.next_msg_seq(),
            accum_key,
        )

        def send() -> None:
            self.comm.isend(
                payload, dest=server, tag=SERVER_TAG, nbytes=message_nbytes(payload)
            )

        send()
        port.spawn_retry_monitor(req.event, send, "prepare_retries", "prepare-ack")
        self.stats.prepares_posted += 1

    # -- serving side ------------------------------------------------------
    def reply_block(self, dest: int, reply_tag: int, bid: BlockId, block: Block) -> None:
        """Answer a get/request with a BlockReply snapshot."""
        reply = BlockReply(bid, self.snapshot(block))
        self.comm.isend(
            reply, dest=dest, tag=reply_tag, nbytes=message_nbytes(reply)
        )
        self.stats.replies_served += 1

    # -- server read path --------------------------------------------------
    def ensure_cached(self, bid: BlockId, loader) -> Generator:
        """Get a ready cache entry for ``bid``, loading it if necessary.

        ``loader`` is a zero-argument generator factory producing the
        block (a disk read on the I/O server).  Concurrent callers for
        the same block coalesce on the in-flight load; when the cache is
        full of dirty/pending entries the engine waits for one to become
        evictable (write-back backpressure) before inserting.
        """
        while True:
            entry = self.cache.lookup(bid)
            if entry is None:
                arrival = self.sim.event(name=f"diskload {bid}")
                try:
                    self.cache.insert_pending(bid, arrival)
                except SIPError:
                    # back-pressure only helps if something can still
                    # become evictable (a write-back or load in flight);
                    # otherwise the budget is genuinely too small
                    if not any(
                        e.dirty or e.pending for _, e in self.cache.items()
                    ):
                        raise
                    self.stats.backpressure_stalls += 1
                    yield self._wait_evictable()
                    continue
                self._inflight[bid] = _InFlight(kind="load", arrival=arrival)
                if len(self._inflight) > self.stats.in_flight_peak:
                    self.stats.in_flight_peak = len(self._inflight)
                self.stats.disk_loads += 1
                block = yield from loader()
                self._complete(bid, block, arrival)
                self.signal_evictable()
                entry = self.cache.lookup(bid)
                if entry is not None and entry.block is not None:
                    return entry
                continue  # evicted mid-load: retry
            if entry.pending:
                self.stats.coalesced += 1
                self._note_waiter(bid)
                yield entry.arrival
                continue
            return entry

    def _wait_evictable(self):
        """An event firing the next time a cache entry becomes evictable."""
        if self._evictable_signal is None or self._evictable_signal.triggered:
            self._evictable_signal = self.sim.event(name="cache-evictable")
        return self._evictable_signal

    def signal_evictable(self) -> None:
        if self._evictable_signal is not None and not self._evictable_signal.triggered:
            self._evictable_signal.succeed(None)

    # -- server write-back ledger -----------------------------------------
    def begin_writeback(self, bid: BlockId) -> int:
        """Register a new write-back; returns its version token."""
        version = self._writeback_version.get(bid, 0) + 1
        self._writeback_version[bid] = version
        self.stats.writebacks += 1
        return version

    def writeback_current(self, bid: BlockId, version: int) -> bool:
        """Whether the write-back holding ``version`` still owns the disk
        image (a newer one supersedes this snapshot)."""
        current = self._writeback_version.get(bid) == version
        if not current:
            self.stats.writebacks_superseded += 1
        return current

    # -- memory-manager observability --------------------------------------
    def note_fault_in(self, nbytes: int) -> None:
        """A spilled block was faulted back in (local block movement)."""
        self.stats.fault_ins += 1

    def note_spill(self, nbytes: int) -> None:
        """A resident block was parked on scratch."""
        self.stats.spills += 1
