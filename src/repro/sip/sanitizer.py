"""Runtime block-access sanitizer for the SIP.

The static race detector (:mod:`repro.sial.racecheck`) must pass any
program whose conflicts depend on runtime values -- index arithmetic
through subindices, data-dependent branches inside pardo, symbolic
segment counts.  The sanitizer catches those at runtime: with
``SIPConfig.sanitize`` enabled, every ``get``/``request``/``put``/
``prepare`` a worker issues is recorded against the block it touches,
keyed by the barrier epoch of its array class, together with the pardo
iteration that issued it.  Two accesses to the same block in the same
epoch conflict when they come from different iterations (or from
different workers outside pardo) and they are not both reads or both
``+=`` accumulates.

Recording happens at the *issuing* worker, where the interpreter knows
the current pardo iteration and the bytecode instruction -- so every
conflict reports the worker rank, instruction pc, and SIAL source line
of both endpoints.  The owner-side :class:`~.distributed.ConflictTracker`
keeps running too; in sanitize mode its violations are routed into the
report instead of aborting the run.

The sanitizer is pure bookkeeping: it consumes no simulated time and
never changes scheduling, so a sanitized run produces bit-identical
results and timings to an unsanitized one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sial.bytecode import CompiledProgram
from .blocks import BlockId

__all__ = ["AccessPoint", "SanitizerConflict", "SanitizerReport", "Sanitizer"]

#: keep at most this many distinct conflicts in the report (the total
#: count keeps growing; a racy loop would otherwise flood memory)
MAX_CONFLICTS = 200


@dataclass(frozen=True)
class AccessPoint:
    """One endpoint of a conflict: who touched the block, and where."""

    worker: int
    pc: int
    mode: str  # "read" | "=" | "+="
    line: Optional[int]
    iteration: tuple  # ("iter", pardo_id, activation, combo) | ("seq", worker)

    def describe(self) -> str:
        what = {"read": "read", "=": "overwrite", "+=": "accumulate"}[self.mode]
        if self.iteration[0] == "iter":
            _, pardo_id, activation, combo = self.iteration
            where = f"pardo {pardo_id} iteration {combo}"
            if activation:
                where += f" (activation {activation})"
        else:
            where = "outside pardo"
        at = f"pc={self.pc}"
        if self.line is not None:
            at += f", line {self.line}"
        return f"{what} by worker {self.worker} in {where} ({at})"


@dataclass(frozen=True)
class SanitizerConflict:
    """Two accesses to one block in one epoch that do not commute."""

    kind: str  # "read-write" | "write-write"
    array: str
    coords: tuple[int, ...]
    epoch: int
    first: AccessPoint
    second: AccessPoint

    def render(self) -> str:
        return (
            f"{self.kind} on {self.array}{list(self.coords)} in epoch "
            f"{self.epoch}: {self.second.describe()} conflicts with "
            f"{self.first.describe()}"
        )


@dataclass
class SanitizerReport:
    """Everything the sanitizer observed during one run."""

    conflicts: list[SanitizerConflict] = field(default_factory=list)
    owner_violations: list[str] = field(default_factory=list)
    total_conflicts: int = 0
    accesses_recorded: int = 0
    blocks_tracked: int = 0

    @property
    def ok(self) -> bool:
        return self.total_conflicts == 0 and not self.owner_violations

    def render(self) -> str:
        if self.ok:
            return (
                f"sanitizer: no conflicts ({self.accesses_recorded} accesses "
                f"on {self.blocks_tracked} blocks)"
            )
        lines = [
            f"sanitizer: {self.total_conflicts} conflicting access pair(s)"
            + (
                f" (showing {len(self.conflicts)} distinct)"
                if self.total_conflicts > len(self.conflicts)
                else ""
            )
        ]
        for c in self.conflicts:
            lines.append("  " + c.render())
        for v in self.owner_violations:
            lines.append(f"  owner-side: {v}")
        return "\n".join(lines)


@dataclass
class _BlockEpochRecord:
    """First access per iteration identity, split by access mode."""

    readers: dict[tuple, AccessPoint] = field(default_factory=dict)
    overwriters: dict[tuple, AccessPoint] = field(default_factory=dict)
    accumulators: dict[tuple, AccessPoint] = field(default_factory=dict)


class Sanitizer:
    """Shared access recorder for one SIP run (all ranks report here)."""

    def __init__(self, program: CompiledProgram) -> None:
        self.program = program
        self._records: dict[tuple[str, int, BlockId], _BlockEpochRecord] = {}
        self._seen_conflicts: set[tuple] = set()
        self.report_data = SanitizerReport()

    # -- recording ----------------------------------------------------------
    def record(
        self,
        cls: str,
        epoch: int,
        block_id: BlockId,
        mode: str,
        worker: int,
        pc: int,
        line: Optional[int],
        iteration: tuple,
    ) -> None:
        point = AccessPoint(
            worker=worker, pc=pc, mode=mode, line=line, iteration=iteration
        )
        rec = self._records.get((cls, epoch, block_id))
        if rec is None:
            rec = self._records[(cls, epoch, block_id)] = _BlockEpochRecord()
            self.report_data.blocks_tracked += 1
        self.report_data.accesses_recorded += 1

        if mode == "read":
            self._collide(rec.overwriters, point, block_id, epoch, "read-write")
            self._collide(rec.accumulators, point, block_id, epoch, "read-write")
            rec.readers.setdefault(iteration, point)
        elif mode == "=":
            self._collide(rec.readers, point, block_id, epoch, "read-write")
            self._collide(rec.overwriters, point, block_id, epoch, "write-write")
            self._collide(rec.accumulators, point, block_id, epoch, "write-write")
            rec.overwriters.setdefault(iteration, point)
        else:  # "+=" accumulates commute with each other only
            self._collide(rec.readers, point, block_id, epoch, "read-write")
            self._collide(rec.overwriters, point, block_id, epoch, "write-write")
            rec.accumulators.setdefault(iteration, point)

    def _collide(
        self,
        prior: dict[tuple, AccessPoint],
        point: AccessPoint,
        block_id: BlockId,
        epoch: int,
        kind: str,
    ) -> None:
        for iteration, first in prior.items():
            if iteration == point.iteration:
                continue
            self.report_data.total_conflicts += 1
            key = (kind, block_id.array_id, first.pc, point.pc)
            if key in self._seen_conflicts:
                continue
            self._seen_conflicts.add(key)
            if len(self.report_data.conflicts) < MAX_CONFLICTS:
                name = self.program.array_table[block_id.array_id].name
                self.report_data.conflicts.append(
                    SanitizerConflict(
                        kind=kind,
                        array=name,
                        coords=block_id.coords,
                        epoch=epoch,
                        first=first,
                        second=point,
                    )
                )

    def absorb(
        self,
        records: dict[tuple[str, int, BlockId], _BlockEpochRecord],
        report: SanitizerReport,
    ) -> None:
        """Merge one rank's recorder state (multiprocess gather).

        Conflicts the child rank already found internally are carried
        over as-is (deduplicated against what earlier ranks reported);
        cross-rank conflicts are discovered here by colliding each
        incoming first-access point against the records other ranks
        contributed for the same (class, epoch, block).
        """
        self.report_data.accesses_recorded += report.accesses_recorded
        self.report_data.total_conflicts += report.total_conflicts
        for msg in report.owner_violations:
            self.note_owner_violation(msg)
        for c in report.conflicts:
            key = (c.kind, self.program.array_id(c.array), c.first.pc, c.second.pc)
            if key in self._seen_conflicts:
                continue
            self._seen_conflicts.add(key)
            if len(self.report_data.conflicts) < MAX_CONFLICTS:
                self.report_data.conflicts.append(c)
        for rkey, rec in records.items():
            mine = self._records.get(rkey)
            if mine is None:
                # first rank to touch this block/epoch: adopt wholesale
                # (its internal conflicts were counted by the child)
                self._records[rkey] = rec
                self.report_data.blocks_tracked += 1
                continue
            _cls, epoch, bid = rkey
            for point in rec.readers.values():
                self._collide(mine.overwriters, point, bid, epoch, "read-write")
                self._collide(mine.accumulators, point, bid, epoch, "read-write")
                mine.readers.setdefault(point.iteration, point)
            for point in rec.overwriters.values():
                self._collide(mine.readers, point, bid, epoch, "read-write")
                self._collide(mine.overwriters, point, bid, epoch, "write-write")
                self._collide(mine.accumulators, point, bid, epoch, "write-write")
                mine.overwriters.setdefault(point.iteration, point)
            for point in rec.accumulators.values():
                self._collide(mine.readers, point, bid, epoch, "read-write")
                self._collide(mine.overwriters, point, bid, epoch, "write-write")
                mine.accumulators.setdefault(point.iteration, point)

    def note_owner_violation(self, message: str) -> None:
        """Sink for :class:`~.distributed.ConflictTracker` violations."""
        if message not in self.report_data.owner_violations:
            self.report_data.owner_violations.append(message)

    # -- results ------------------------------------------------------------
    def report(self) -> SanitizerReport:
        return self.report_data
