"""The SIP worker: a bytecode interpreter on a simulated MPI rank.

Each worker executes the whole program SPMD-style; pardo iterations are
the only work division (chunks come from the master).  The design
mirrors the paper's Section V:

* all messaging is asynchronous -- ``get``/``put`` only *initiate*
  communication; the super instruction that needs a block waits for it
  if it has not arrived (and that wait is accounted separately, giving
  the paper's per-instruction busy/wait profile);
* a lookahead prefetcher issues ``get``s for upcoming loop iterations;
* remote blocks live in a per-worker LRU cache; a block evicted before
  use must be refetched (the BlueGene/P pathology of Section VI-A);
* each worker also runs a *service pump* answering block requests and
  applying puts/accumulates for the distributed blocks it owns;
* barrier misuse (conflicting accesses within one epoch) is detected at
  the owning rank.

Every block movement -- demand gets/requests, prefetch hints, puts,
prepares, replies -- goes through the rank's
:class:`~repro.sip.blockio.BlockTransferEngine`; the interpreter never
touches the wire protocol for block payloads itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ...sial.bytecode import (
    Op,
    evaluate_condition,
    evaluate_rpn,
)
from ...simmpi import Timeout
from ...simmpi.faults import ResilienceStats, WorkerCrashed
from ..backend import KernelOperand
from ..blockio import BlockTransferEngine
from ..blocks import Block, BlockId, block_nbytes
from ..config import SIPError
from ..decode import DecodedOperand, ResolvedOperand
from ..distributed import ConflictTracker
from ..memman import MemoryManager
from ..messages import (
    MASTER_TAG,
    REPLY_TAG_BASE,
    SERVICE_TAG,
    Ack,
    ChunkRequest,
    CollectiveContribution,
    GetBlock,
    PutBlock,
    Shutdown,
    WorkerDone,
)
from ..profiling import WorkerProfile
from ..runtime import SharedRuntime
from ..scheduler import conditions_read_scalars
from ..transport import CommEndpoint
from .ledger import ScalarLedger
from .prefetch import LookaheadPrefetcher
from .resilience import ResilientMessaging

__all__ = ["WorkerProcess"]

LOCAL_KINDS = ("static", "temp", "local")


@dataclass
class _PardoState:
    activation: int
    entry_time: float
    chunk: tuple[tuple[int, ...], ...] = ()
    pos: int = 0


@dataclass
class _DoState:
    values: list[int]
    pos: int = 0


class WorkerProcess(ResilientMessaging):
    """One SIP worker rank."""

    def __init__(
        self, rt: SharedRuntime, worker_index: int, comm: CommEndpoint
    ) -> None:
        self.rt = rt
        self.config = rt.config
        self.worker_index = worker_index
        self.rank = rt.config.worker_rank(worker_index)
        self.comm = comm
        self.sim = rt.sim
        self.backend = rt.make_backend()
        self.profile = WorkerProfile()
        self.resilience = ResilienceStats()
        self._nbytes_memo: dict[BlockId, int] = {}
        self.memman = MemoryManager(
            rt.config.memory_budget,
            real=rt.real,
            name=f"worker{worker_index}",
            cache_blocks=rt.config.cache_blocks,
            nbytes_of=self._block_nbytes,
            dtype=rt.dtype,
            spill=rt.config.spill,
            spill_capacity=rt.config.scratch_per_worker,
            machine=rt.config.machine,
            faults=rt.config.faults,
            fault_device=f"scratch{worker_index}",
            retry_limit=rt.config.retry_limit,
            clock=lambda: rt.sim.now,
            tracer=rt.config.tracer,
            rank=self.rank,
            resilience=self.resilience,
        )
        self.pool = self.memman.pool
        self.cache = self.memman.cache

        # interpreter state ---------------------------------------------------
        self.scalars: list[float] = [0.0] * len(rt.program.scalar_table)
        self.index_values: dict[int, int] = {}
        self.local_blocks: dict[BlockId, Block] = {}
        self.temp_current: dict[int, BlockId] = {}
        self.owned: dict[BlockId, Block] = {}
        self.call_stack: list[int] = []
        self.do_states: dict[int, _DoState] = {}
        self.pardo_states: dict[int, _PardoState] = {}
        self.pardo_activations: dict[int, int] = {}
        self.current_pardo: Optional[int] = None  # pardo_id while inside
        # sanitizer identity of the running pardo iteration, or None
        # outside pardo; only maintained when the sanitizer is on
        self.sanitizer = rt.sanitizer
        self.current_iteration: Optional[tuple] = None
        # collective ledger: base + per-iteration deltas per scalar, so
        # the master reduces collectives in canonical iteration order
        self.scalar_ledger = ScalarLedger(len(rt.program.scalar_table))
        self._iter_key: Optional[tuple] = None  # identity of the running iteration
        self._cond_scalar_need: dict[int, bool] = {}  # per pardo pc

        # communication bookkeeping ------------------------------------------
        self._tag_counter = REPLY_TAG_BASE
        self.epoch = 0
        self.served_epoch = 0
        self.collective_seq = 0
        self.checkpoint_seq = 0
        self.trackers: dict[int, ConflictTracker] = {}
        self._wait_acc = 0.0
        self._shutdown = False

        # resilience bookkeeping (all inert unless a FaultPlan /
        # config.resilient is set) -------------------------------------
        self._msg_seq = 0  # sender-unique seq for puts/prepares
        self._chunk_seq = 0  # monotone seq for chunk requests
        self._applied_puts: set[tuple[int, int]] = set()  # (source, seq)
        plan = rt.config.faults
        self._crash_at = (
            plan.pending_crash_time(self.rank) if plan is not None else None
        )

        # every block movement for this rank goes through the engine;
        # the ReplicaMap learns of wire fetches through on_issue, and
        # the memory manager reports fault-in/spill traffic back
        self.engine = BlockTransferEngine(
            self,
            reserve=rt.config.blockio_reserve,
            max_in_flight=rt.config.blockio_max_in_flight,
        )
        self.engine.on_issue = (
            lambda bid: rt.replicas.note(bid, worker_index)
        )
        self.memman.blockio = self.engine
        self.blockio = self.engine  # uniform stats handle across rank kinds
        self.prefetcher = LookaheadPrefetcher(self)

        self._fast = {
            Op.JUMP: self.op_jump,
            Op.BRANCH_FALSE: self.op_branch_false,
            Op.CALL: self.op_call,
            Op.RETURN: self.op_return,
            Op.DO_START: self.op_do_start,
            Op.DO_END: self.op_do_end,
            Op.DOIN_START: self.op_doin_start,
            Op.DOIN_END: self.op_doin_end,
            Op.PARDO_END: self.op_pardo_end,
            Op.GET: self.op_get,
            Op.REQUEST: self.op_request,
            Op.PREFETCH: self.op_prefetch,
            Op.CREATE: self.op_create,
            Op.DELETE: self.op_delete,
            Op.ALLOCATE: self.op_allocate,
            Op.DEALLOCATE: self.op_deallocate,
            Op.SCALAR_ASSIGN: self.op_scalar_assign,
        }
        self._slow = {
            Op.PARDO_START: self.op_pardo_start,
            Op.FILL: self.op_fill,
            Op.COPY: self.op_copy,
            Op.NEGATE: self.op_negate,
            Op.SCALE: self.op_scale,
            Op.SCALE_INPLACE: self.op_scale_inplace,
            Op.ACCUM: self.op_accum,
            Op.ADDSUB: self.op_addsub,
            Op.CONTRACT: self.op_contract,
            Op.CONTRACT_FUSED: self.op_contract_fused,
            Op.SCALAR_CONTRACT: self.op_scalar_contract,
            Op.COMPUTE_INTEGRALS: self.op_compute_integrals,
            Op.EXECUTE: self.op_execute,
            Op.PUT: self.op_put,
            Op.PREPARE: self.op_prepare,
            Op.SIP_BARRIER: self.op_sip_barrier,
            Op.SERVER_BARRIER: self.op_server_barrier,
            Op.COLLECTIVE: self.op_collective,
            Op.BLOCKS_TO_LIST: self.op_blocks_to_list,
            Op.LIST_TO_BLOCKS: self.op_list_to_blocks,
            Op.CHECKPOINT: self.op_checkpoint,
        }

        # execution fast path: the pre-decoded stream plus flat per-pc
        # handler tables, so the inner loop does no per-step dict lookup
        self._instrs = rt.decoded.instructions
        self._fast_tab = [self._fast.get(d.op) for d in self._instrs]
        self._slow_tab = [self._slow.get(d.op) for d in self._instrs]
        self._memo_resolve = rt.config.fastpath
        self._rpn_consts = rt.rpn_consts

    # convenience views over the engine's ledgers (used by the runners
    # when gathering results and by the resilient drain at run end)
    @property
    def outstanding_put_acks(self) -> list:
        return self.engine.outstanding_put_acks

    @property
    def outstanding_prepare_acks(self) -> list:
        return self.engine.outstanding_prepare_acks

    @property
    def ever_fetched(self) -> set[BlockId]:
        return self.engine.ever_fetched

    # ======================================================================
    # main loops
    # ======================================================================
    def run(self) -> Generator:
        """The worker's main interpreter loop (a simulated process)."""
        instrs = self._instrs
        fast_tab = self._fast_tab
        slow_tab = self._slow_tab
        tracer = self.config.tracer
        crash_at = self._crash_at
        sim = self.sim
        profile = self.profile
        memman = self.memman
        start_time = sim.now
        pc = 0
        n_instr = 0
        while True:
            if crash_at is not None and sim.now >= crash_at:
                self.rt.config.faults.record_crash(self.rank, sim.now)
                raise WorkerCrashed(self.rank, sim.now)
            instr = instrs[pc]
            n_instr += 1
            fast = fast_tab[pc]
            if fast is not None:
                pc = fast(instr, pc)
                if memman.time_debt:
                    # spill/fault-in traffic caused by this instruction
                    yield Timeout(memman.take_time_debt())
                continue
            handler = slow_tab[pc]
            if handler is None:
                if instr.op == Op.STOP:
                    break
                raise SIPError(f"worker cannot execute opcode {instr.op}")
            memman.clear_instr_pins()
            self._wait_acc = 0.0
            t0 = sim.now
            old_pc = pc
            pc = yield from handler(instr, pc)
            if memman.time_debt:
                t_io = sim.now
                yield Timeout(memman.take_time_debt())
                self._wait_acc += sim.now - t_io
            elapsed = sim.now - t0
            wait = self._wait_acc
            profile.record_instr(old_pc, elapsed - wait, wait)
            if self.current_pardo is not None:
                profile.pardo_stats(self.current_pardo).wait_time += wait
            if tracer is not None and elapsed > 0:
                loc = instr.location
                tracer.record(
                    self.worker_index,
                    old_pc,
                    instr.op,
                    t0,
                    sim.now,
                    wait,
                    line=loc.line if loc is not None else None,
                )
        profile.instructions = n_instr
        # drain outstanding writes so they land before we report done
        yield from self._wait_events(self.engine.outstanding_put_acks)
        yield from self._wait_events(self.engine.outstanding_prepare_acks)
        self.profile.elapsed = self.sim.now - start_time
        if not self.rt.resilient:
            self.comm.isend(
                WorkerDone(self.worker_index),
                dest=self.config.master_rank,
                tag=MASTER_TAG,
            )
            return
        # resilient: the master acks completion so a dropped WorkerDone
        # cannot wedge termination
        ack_tag = self.next_tag()
        req = self.comm.irecv(source=self.config.master_rank, tag=ack_tag)
        payload = WorkerDone(self.worker_index, ack_tag)

        def resend() -> None:
            self.comm.isend(payload, dest=self.config.master_rank, tag=MASTER_TAG)

        resend()
        yield from self._reliable_wait(req.event, resend, "control_retries", "done")

    def service(self) -> Generator:
        """Answer block requests / apply puts for blocks this rank owns.

        Modeled as an always-responsive progress engine (the paper's
        workers poll between instructions; an instantaneous responder
        is the idealization of a well-tuned polling interval).
        """
        while True:
            msg = yield from self.comm.recv(tag=SERVICE_TAG)
            payload = msg.payload
            if isinstance(payload, Shutdown):
                if payload.ack_tag >= 0:
                    self.comm.isend(
                        Ack(payload.ack_tag), dest=msg.source, tag=payload.ack_tag
                    )
                return
            if isinstance(payload, GetBlock):
                block = self.owned.get(payload.block_id)
                if block is None:
                    raise SIPError(
                        f"get of unwritten distributed block {payload.block_id} "
                        f"(array "
                        f"{self.rt.array_desc(payload.block_id.array_id).name!r})"
                    )
                self._fold_accums(payload.block_id)
                self.memman.touch(payload.block_id)
                self.tracker(payload.epoch).record_read(
                    payload.worker_index, payload.block_id
                )
                self.engine.reply_block(
                    msg.source, payload.reply_tag, payload.block_id, block
                )
            elif isinstance(payload, PutBlock):
                # resilient protocol: a retried put is applied exactly
                # once (dedup by sender seq) but always re-acked
                duplicate = (
                    payload.seq >= 0
                    and (msg.source, payload.seq) in self._applied_puts
                )
                if duplicate:
                    self.resilience.duplicates_ignored += 1
                else:
                    if payload.seq >= 0:
                        self._applied_puts.add((msg.source, payload.seq))
                    self.apply_put(
                        payload.block_id,
                        payload.op,
                        payload.block,
                        payload.worker_index,
                        payload.epoch,
                        accum_key=payload.accum_key,
                    )
                self.comm.isend(Ack(payload.ack_tag), dest=msg.source, tag=payload.ack_tag)
            else:
                raise SIPError(f"unexpected service message {payload!r}")
            if self.memman.time_debt:
                yield Timeout(self.memman.take_time_debt())

    # ======================================================================
    # helpers
    # ======================================================================
    def _block_nbytes(self, bid: BlockId) -> int:
        """Size of a block by id (memoized; sizes cache byte accounting)."""
        n = self._nbytes_memo.get(bid)
        if n is None:
            n = self._nbytes_memo[bid] = block_nbytes(
                self.rt.block_shape(bid), self.rt.dtype
            )
        return n

    def tracker(self, epoch: int) -> ConflictTracker:
        t = self.trackers.get(epoch)
        if t is None:
            t = self.trackers[epoch] = ConflictTracker(
                "distributed",
                enabled=self.config.validate_barriers,
                sink=(
                    self.sanitizer.note_owner_violation
                    if self.sanitizer is not None
                    else None
                ),
            )
        return t

    def _sanitize(
        self, cls: str, epoch: int, bid: BlockId, mode: str, instr, pc: int
    ) -> None:
        """Record one block access with the sanitizer (no simulated time)."""
        if self.sanitizer is None:
            return
        loc = instr.location
        self.sanitizer.record(
            cls,
            epoch,
            bid,
            mode,
            worker=self.worker_index,
            pc=pc,
            line=loc.line if loc is not None else None,
            iteration=self.current_iteration or ("seq", self.worker_index),
        )

    def eval_rpn(self, rpn: tuple) -> float:
        # RPN programs with no scalar/index reads were pre-evaluated at
        # decode time (the optimizer interns them, so identity is stable)
        hit = self._rpn_consts.get(id(rpn))
        if hit is not None:
            return hit
        return evaluate_rpn(
            rpn,
            scalars=self.scalars,
            symbolics=self.rt.table.symbolic_values,
            index_values=self.index_values,
        )

    # -- operand resolution ---------------------------------------------------
    def resolve(self, op) -> ResolvedOperand:
        """Resolve a (decoded) block operand against current index values.

        Decoded operands memoize by index-value tuple when the fast path
        is on; raw :class:`BlockOperand`s (tests, external callers) are
        decoded on the fly.
        """
        if not isinstance(op, DecodedOperand):
            op = DecodedOperand(
                op, self.rt.array_desc(op.array_id), self.rt.table
            )
        return op.resolve(self.index_values, self._memo_resolve)

    # -- block acquisition (read path) ----------------------------------------
    def acquire(self, r: ResolvedOperand) -> Generator:
        """Obtain the block behind an operand, waiting if in flight."""
        if r.kind in LOCAL_KINDS:
            block = self.local_blocks.get(r.block_id)
            if block is None:
                desc = self.rt.array_desc(r.block_id.array_id)
                raise SIPError(
                    f"block {r.block_id.coords} of {desc.kind} array "
                    f"{desc.name!r} read before it was written"
                )
            self.memman.touch(r.block_id)
            self.memman.pin_instr(r.block_id)
            return block
        if r.kind == "distributed":
            if self.rt.owner_rank(r.block_id) == self.rank:
                block = self.owned.get(r.block_id)
                if block is None:
                    raise SIPError(
                        f"get of unwritten distributed block {r.block_id}"
                    )
                self._fold_accums(r.block_id)
                self.memman.touch(r.block_id)
                self.memman.pin_instr(r.block_id)
                self.tracker(self.epoch).record_read(self.worker_index, r.block_id)
                return block
            return (
                yield from self.engine.acquire(r.block_id, "get", self._wait)
            )
        if r.kind == "served":
            return (
                yield from self.engine.acquire(r.block_id, "request", self._wait)
            )
        raise SIPError(f"cannot read array kind {r.kind!r}")

    # -- write targets ----------------------------------------------------------
    def write_target(self, r: ResolvedOperand, needs_existing: bool) -> Block:
        """The local block an instruction writes into, allocating if needed.

        ``needs_existing`` is True for accumulate ops and slice
        insertions, which read-modify-write: a fresh block is zeroed.
        """
        bid = r.block_id
        if r.kind == "temp":
            current = self.temp_current.get(bid.array_id)
            if current == bid:
                self.memman.touch(bid)
                self.memman.pin_instr(bid)
                return self._writable(self.local_blocks[bid])
            if r.slices is not None:
                raise SIPError(
                    f"insertion into temp block {bid} that does not exist yet"
                )
            if current is not None:
                old = self.local_blocks.pop(current)
                self.memman.free(current, old)
            block = self._alloc_block(bid, zero=needs_existing)
            self.temp_current[bid.array_id] = bid
            self.local_blocks[bid] = block
            return block
        if r.kind in ("local", "static"):
            block = self.local_blocks.get(bid)
            if block is None:
                if r.slices is not None:
                    raise SIPError(
                        f"insertion into missing block {bid} of array "
                        f"{self.rt.array_desc(bid.array_id).name!r}; "
                        "allocate it first"
                    )
                block = self._alloc_block(bid, zero=needs_existing)
                self.local_blocks[bid] = block
                return block
            self.memman.touch(bid)
            self.memman.pin_instr(bid)
            return self._writable(block)
        verb = "put" if r.kind == "distributed" else "prepare"
        raise SIPError(
            f"{r.kind} array blocks are written with '{verb}', "
            "not direct assignment"
        )

    def _writable(self, block: Block) -> Block:
        """Copy-on-write barrier before any in-place block write."""
        copied = block.ensure_writable()
        if copied:
            cow = self.rt.cow
            cow.cow_copies += 1
            cow.cow_bytes_copied += copied
        return block

    def _alloc_block(self, bid: BlockId, zero: bool) -> Block:
        shape = self.rt.block_shape(bid)
        block = self.memman.allocate(shape)
        if zero and block.data is not None:
            block.data[...] = 0.0
        if self.memman.unified:
            self.memman.register(
                bid, block, self.rt.array_desc(bid.array_id).kind
            )
            self.memman.pin_instr(bid)
        return block

    def kernel_operand(self, r: ResolvedOperand, block: Block) -> KernelOperand:
        data = None
        if block.data is not None:
            data = block.data[r.slices] if r.slices is not None else block.data
        return KernelOperand(
            shape=r.shape,
            index_ids=r.index_ids,
            data=data,
            element_ranges=r.element_ranges,
        )

    # -- put application (shared with the service pump) --------------------------
    def apply_put(
        self,
        bid: BlockId,
        op: str,
        incoming: Block,
        writer_index: int,
        epoch: int,
        accum_key: Optional[tuple] = None,
    ) -> None:
        self.tracker(epoch).record_write(writer_index, bid, op)
        block = self.owned.get(bid)
        if block is None:
            block = self._alloc_block(bid, zero=True)
            self.owned[bid] = block
        else:
            self.memman.touch(bid)
        if op != "=" and accum_key is not None:
            # canonical accumulation: buffer the contribution and fold
            # at the first read, sorted by sender-side order key
            self.engine.accums.buffer(bid, accum_key, incoming)
            return
        self._writable(block)
        if op == "=":
            # an overwrite supersedes any buffered contributions
            self.engine.accums.discard(bid)
            if block.data is not None and incoming.data is not None:
                block.data[...] = incoming.data
        elif block.data is not None and incoming.data is not None:
            # keyless legacy path (direct callers): apply immediately
            block.data[...] += incoming.data

    def _fold_accums(self, bid: BlockId) -> None:
        """Apply buffered '+=' contributions to ``bid`` in key order."""
        if bid not in self.engine.accums:
            return
        block = self.owned[bid]
        self.memman.touch(bid)
        self._writable(block)
        self.engine.accums.fold_into(bid, block)

    def fold_pending_accums(self) -> None:
        """Fold every buffered contribution (result gathering, run end)."""
        for bid in self.engine.accums.pending_ids():
            self._fold_accums(bid)

    # ======================================================================
    # fast opcode handlers (no simulated time passes)
    # ======================================================================
    def op_jump(self, instr, pc: int) -> int:
        return instr.args[0]

    def op_branch_false(self, instr, pc: int) -> int:
        cond, target = instr.args
        ok = evaluate_condition(
            cond,
            scalars=self.scalars,
            symbolics=self.rt.table.symbolic_values,
            index_values=self.index_values,
        )
        return pc + 1 if ok else target

    def op_call(self, instr, pc: int) -> int:
        self.call_stack.append(pc + 1)
        return instr.args[0]

    def op_return(self, instr, pc: int) -> int:
        if not self.call_stack:
            raise SIPError("RETURN with empty call stack")
        return self.call_stack.pop()

    def op_do_start(self, instr, pc: int) -> int:
        index_id, exit_pc, get_pcs = instr.args
        values = list(self.rt.table[index_id].values())
        if not values:
            return exit_pc
        self.do_states[pc] = _DoState(values=values)
        self.index_values[index_id] = values[0]
        self.prefetcher.future(
            get_pcs, index_id, values[1 : 1 + self.config.prefetch_depth]
        )
        return pc + 1

    def op_do_end(self, instr, pc: int) -> int:
        index_id, body_start = instr.args
        start_pc = body_start - 1
        state = self.do_states[start_pc]
        state.pos += 1
        if state.pos < len(state.values):
            self.index_values[index_id] = state.values[state.pos]
            nxt = state.values[
                state.pos + 1 : state.pos + 1 + self.config.prefetch_depth
            ]
            get_pcs = self._instrs[start_pc].args[2]
            self.prefetcher.future(get_pcs, index_id, nxt)
            return body_start
        del self.do_states[start_pc]
        self.index_values.pop(index_id, None)
        return pc + 1

    def op_doin_start(self, instr, pc: int) -> int:
        sub_id, exit_pc, get_pcs = instr.args
        sub = self.rt.table[sub_id]
        super_val = self.index_values.get(sub.super_id)
        if super_val is None:
            raise SIPError(
                f"'do {sub.name} in ...' outside a loop over its super index"
            )
        values = list(sub.subvalues_of(super_val))
        if not values:
            return exit_pc
        self.do_states[pc] = _DoState(values=values)
        self.index_values[sub_id] = values[0]
        self.prefetcher.future(
            get_pcs, sub_id, values[1 : 1 + self.config.prefetch_depth]
        )
        return pc + 1

    op_doin_end = op_do_end  # identical mechanics

    def op_pardo_end(self, instr, pc: int) -> int:
        return instr.args[0]

    def op_get(self, instr, pc: int) -> int:
        r = self.resolve(instr.args[0])
        bid = r.block_id
        self._sanitize("distributed", self.epoch, bid, "read", instr, pc)
        if self.rt.owner_rank(bid) == self.rank:
            if bid not in self.owned:
                raise SIPError(f"get of unwritten distributed block {bid}")
            self.tracker(self.epoch).record_read(self.worker_index, bid)
            return pc + 1
        # a dropped hint is fine: the instruction that *uses* the block
        # fetches with backpressure
        self.engine.hint(bid, "get")
        return pc + 1

    def op_request(self, instr, pc: int) -> int:
        r = self.resolve(instr.args[0])
        bid = r.block_id
        self._sanitize("served", self.served_epoch, bid, "read", instr, pc)
        self.engine.hint(bid, "request")
        return pc + 1

    def op_prefetch(self, instr, pc: int) -> int:
        """Optimizer-inserted fetch hint: issue early, never wait or fault.

        Deliberately does NOT sanitize or record tracker state -- the
        demand access the optimizer proved is guaranteed to follow in
        the same iteration is what the sanitizer and conflict tracker
        must observe, exactly as at ``-O0``.
        """
        r = self.resolve(instr.args[0])
        bid = r.block_id
        if r.kind == "distributed" and self.rt.owner_rank(bid) == self.rank:
            return pc + 1
        kind = "get" if r.kind == "distributed" else "request"
        self.engine.hint(bid, kind)
        return pc + 1

    def op_create(self, instr, pc: int) -> int:
        return pc + 1  # storage is lazy; creation is a declaration of intent

    def op_delete(self, instr, pc: int) -> int:
        array_id = instr.args[0]
        for bid in [b for b in self.owned if b.array_id == array_id]:
            self.engine.accums.discard(bid)
            self.memman.free(bid, self.owned.pop(bid))
        for bid in [b for b, e in list(self.cache.items()) if b.array_id == array_id]:
            self.cache.remove(bid)
            self.rt.replicas.discard(bid, self.worker_index)
        return pc + 1

    def op_allocate(self, instr, pc: int) -> int:
        r = self.resolve(instr.args[0])
        if r.block_id not in self.local_blocks:
            self.local_blocks[r.block_id] = self._alloc_block(r.block_id, zero=True)
        return pc + 1

    def op_deallocate(self, instr, pc: int) -> int:
        r = self.resolve(instr.args[0])
        block = self.local_blocks.pop(r.block_id, None)
        if block is None:
            raise SIPError(f"deallocate of missing block {r.block_id}")
        self.memman.free(r.block_id, block)
        return pc + 1

    def op_scalar_assign(self, instr, pc: int) -> int:
        scalar_id, op, rpn = instr.args
        value = self.eval_rpn(rpn)
        self._apply_scalar(scalar_id, op, value, rpn)
        return pc + 1

    def _apply_scalar(self, scalar_id: int, op: str, value: float, rpn=()) -> None:
        """Apply a scalar update and maintain the collective ledger."""
        if op == "=":
            self.scalars[scalar_id] = value
        elif op == "+=":
            self.scalars[scalar_id] += value
        elif op == "-=":
            self.scalars[scalar_id] -= value
        else:  # '*='
            self.scalars[scalar_id] *= value
        self.scalar_ledger.note(scalar_id, op, value, self._iter_key, rpn)

    # ======================================================================
    # slow opcode handlers (generators)
    # ======================================================================
    def op_pardo_start(self, instr, pc: int) -> Generator:
        pardo_id, index_ids, conditions, exit_pc, get_pcs = instr.args
        stats = self.profile.pardo_stats(pardo_id)
        state = self.pardo_states.get(pc)
        if state is None:
            activation = self.pardo_activations.get(pc, 0)
            state = _PardoState(activation=activation, entry_time=self.sim.now)
            self.pardo_states[pc] = state
            self.current_pardo = pardo_id
            stats.entries += 1
        while True:
            if state.pos < len(state.chunk):
                combo = state.chunk[state.pos]
                state.pos += 1
                for i, v in zip(index_ids, combo):
                    self.index_values[i] = v
                self._iter_key = (pardo_id, state.activation, combo)
                if self.sanitizer is not None:
                    self.current_iteration = (
                        "iter", pardo_id, state.activation, combo
                    )
                stats.iterations += 1
                depth = self.config.prefetch_depth
                self.prefetcher.pardo(
                    get_pcs, index_ids, state.chunk[state.pos : state.pos + depth]
                )
                return pc + 1
            # chunk exhausted: ask the master for more
            reply_tag = self.next_tag()
            req = self.comm.irecv(source=self.config.master_rank, tag=reply_tag)
            seq = -1
            if self.rt.resilient:
                seq = self._chunk_seq
                self._chunk_seq += 1
            # where clauses referencing scalars (hand-built bytecode
            # only) depend on worker-side state the master cannot see:
            # ship a snapshot for it to enumerate against
            need_scalars = self._cond_scalar_need.get(pc)
            if need_scalars is None:
                need_scalars = self._cond_scalar_need[pc] = (
                    conditions_read_scalars(conditions)
                )
            snapshot = tuple(self.scalars) if need_scalars else None
            payload = ChunkRequest(
                pc, state.activation, self.worker_index, reply_tag, seq, snapshot
            )

            def send() -> None:
                self.comm.isend(payload, dest=self.config.master_rank, tag=MASTER_TAG)

            send()
            t0 = self.sim.now
            msg = yield from self._reliable_wait(
                req.event, send, "chunk_retries", "chunk"
            )
            stats.chunk_wait += self.sim.now - t0
            iterations = msg.payload.iterations
            if not iterations:
                # pardo complete for this worker
                del self.pardo_states[pc]
                self.pardo_activations[pc] = state.activation + 1
                for i in index_ids:
                    self.index_values.pop(i, None)
                stats.elapsed += self.sim.now - state.entry_time
                self.current_pardo = None
                self.current_iteration = None
                self._iter_key = None
                return exit_pc
            state.chunk = iterations
            state.pos = 0

    def op_fill(self, instr, pc: int) -> Generator:
        dst_op, op, rpn = instr.args
        r = self.resolve(dst_op)
        value = self.eval_rpn(rpn)
        block = self.write_target(r, needs_existing=(op != "=" or r.slices is not None))
        cost = self.backend.fill(self.kernel_operand(r, block), value, op)
        yield Timeout(cost)
        return pc + 1

    def op_copy(self, instr, pc: int) -> Generator:
        dst_op, src_op = instr.args
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(dst_r, needs_existing=dst_r.slices is not None)
        cost = self.backend.copy(
            self.kernel_operand(dst_r, dst_block),
            self.kernel_operand(src_r, src_block),
        )
        yield Timeout(cost)
        return pc + 1

    def op_negate(self, instr, pc: int) -> Generator:
        dst_op, src_op = instr.args
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(dst_r, needs_existing=dst_r.slices is not None)
        cost = self.backend.negate(
            self.kernel_operand(dst_r, dst_block),
            self.kernel_operand(src_r, src_block),
        )
        yield Timeout(cost)
        return pc + 1

    def op_scale(self, instr, pc: int) -> Generator:
        dst_op, op, src_op, rpn = instr.args
        factor = self.eval_rpn(rpn)
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(
            dst_r, needs_existing=(op != "=" or dst_r.slices is not None)
        )
        cost = self.backend.scale(
            self.kernel_operand(dst_r, dst_block),
            op,
            self.kernel_operand(src_r, src_block),
            factor,
        )
        yield Timeout(cost)
        return pc + 1

    def op_scale_inplace(self, instr, pc: int) -> Generator:
        dst_op, rpn = instr.args
        factor = self.eval_rpn(rpn)
        r = self.resolve(dst_op)
        block = self.write_target(r, needs_existing=True)
        cost = self.backend.scale_inplace(self.kernel_operand(r, block), factor)
        yield Timeout(cost)
        return pc + 1

    def op_accum(self, instr, pc: int) -> Generator:
        dst_op, op, src_op = instr.args
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(dst_r, needs_existing=True)
        cost = self.backend.accumulate(
            self.kernel_operand(dst_r, dst_block),
            op,
            self.kernel_operand(src_r, src_block),
        )
        yield Timeout(cost)
        return pc + 1

    def op_addsub(self, instr, pc: int) -> Generator:
        dst_op, sign, a_op, b_op = instr.args
        a_r = self.resolve(a_op)
        a_block = yield from self.acquire(a_r)
        b_r = self.resolve(b_op)
        b_block = yield from self.acquire(b_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(dst_r, needs_existing=dst_r.slices is not None)
        cost = self.backend.addsub(
            self.kernel_operand(dst_r, dst_block),
            sign,
            self.kernel_operand(a_r, a_block),
            self.kernel_operand(b_r, b_block),
        )
        yield Timeout(cost)
        return pc + 1

    def op_contract(self, instr, pc: int) -> Generator:
        dst_op, op, a_op, b_op = instr.args
        a_r = self.resolve(a_op)
        a_block = yield from self.acquire(a_r)
        b_r = self.resolve(b_op)
        b_block = yield from self.acquire(b_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(
            dst_r, needs_existing=(op != "=" or dst_r.slices is not None)
        )
        cost = self.backend.contract(
            self.kernel_operand(dst_r, dst_block),
            op,
            self.kernel_operand(a_r, a_block),
            self.kernel_operand(b_r, b_block),
        )
        yield Timeout(cost)
        return pc + 1

    def op_contract_fused(self, instr, pc: int) -> Generator:
        """Optimizer-fused ``tmp = a*b; dst op [factor*]tmp``."""
        dst_op, op, a_op, b_op, tmp_ids, factor_rpn = instr.args
        factor = None if factor_rpn is None else self.eval_rpn(factor_rpn)
        a_r = self.resolve(a_op)
        a_block = yield from self.acquire(a_r)
        b_r = self.resolve(b_op)
        b_block = yield from self.acquire(b_r)
        dst_r = self.resolve(dst_op)
        dst_block = self.write_target(
            dst_r, needs_existing=(op != "=" or dst_r.slices is not None)
        )
        cost = self.backend.fused_contract(
            self.kernel_operand(dst_r, dst_block),
            op,
            self.kernel_operand(a_r, a_block),
            self.kernel_operand(b_r, b_block),
            tmp_ids,
            factor,
        )
        yield Timeout(cost)
        return pc + 1

    def op_scalar_contract(self, instr, pc: int) -> Generator:
        scalar_id, op, a_op, b_op = instr.args
        a_r = self.resolve(a_op)
        a_block = yield from self.acquire(a_r)
        b_r = self.resolve(b_op)
        b_block = yield from self.acquire(b_r)
        value, cost = self.backend.scalar_contract(
            self.kernel_operand(a_r, a_block),
            self.kernel_operand(b_r, b_block),
        )
        yield Timeout(cost)
        self._apply_scalar(scalar_id, op, value)
        return pc + 1

    def op_compute_integrals(self, instr, pc: int) -> Generator:
        r = self.resolve(instr.args[0])
        block = self.write_target(r, needs_existing=r.slices is not None)
        cost = self.backend.compute_integrals(
            self.kernel_operand(r, block),
            r.element_ranges,
            self.config.integral_source,
        )
        yield Timeout(cost)
        return pc + 1

    def op_execute(self, instr, pc: int) -> Generator:
        name, arg_spec = instr.args
        fn = self.rt.registry.lookup(name)
        blocks: list[KernelOperand] = []
        scalars: list[float] = []
        for kind, value in arg_spec:
            if kind == "block":
                r = self.resolve(value)
                if r.kind not in LOCAL_KINDS:
                    raise SIPError(
                        f"execute {name}: block arguments must be static/"
                        f"temp/local arrays (got {r.kind!r}); get/request "
                        "into a temp first"
                    )
                block = self.local_blocks.get(r.block_id)
                if block is None:
                    block = self.write_target(r, needs_existing=True)
                else:
                    # user supers may write their block args in place
                    self.memman.touch(r.block_id)
                    self.memman.pin_instr(r.block_id)
                    self._writable(block)
                blocks.append(self.kernel_operand(r, block))
            elif kind == "num":
                scalars.append(value)
            elif kind == "scalar":
                scalars.append(self.scalars[value])
            elif kind == "symbolic":
                scalars.append(self.rt.table.symbolic_values[value])
            elif kind == "index":
                v = self.index_values.get(value)
                if v is None:
                    raise SIPError(f"execute {name}: index argument not bound")
                scalars.append(float(v))
        from ..registry import SuperCall

        flops = fn(SuperCall(name=name, blocks=blocks, scalars=scalars, real=self.rt.real))
        if flops is None:
            nbytes = sum(b.nbytes for b in blocks) or 8
            cost = self.rt.cost.elementwise_time(nbytes)
        else:
            cost = self.rt.cost.flops_time(float(flops))
        yield Timeout(cost)
        return pc + 1

    def op_put(self, instr, pc: int) -> Generator:
        dst_op, op, src_op = instr.args
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        if dst_r.slices is not None:
            raise SIPError("put of a sub-block slice is not supported")
        if src_r.slices is not None:
            src_block = self._materialize_view(src_r, src_block)
        if src_block.shape != dst_r.shape:
            raise SIPError(
                f"put shape mismatch: {src_block.shape} -> {dst_r.shape}"
            )
        bid = dst_r.block_id
        self._sanitize("distributed", self.epoch, bid, op, instr, pc)
        accum_key = (
            None
            if op == "="
            else self.engine.accums.next_key(self._iter_key, self.worker_index)
        )
        if self.rt.owner_rank(bid) == self.rank:
            # a buffered '+=' holds the payload past this instruction,
            # so the owner-local fast path snapshots just like a send
            snapshot = (
                src_block
                if accum_key is None
                else self.engine.snapshot(src_block)
            )
            self.apply_put(
                bid, op, snapshot, self.worker_index, self.epoch,
                accum_key=accum_key,
            )
            cost = self.rt.cost.elementwise_time(src_block.nbytes)
            yield Timeout(cost)
            return pc + 1
        self.engine.post_put(bid, op, src_block, accum_key)
        yield Timeout(self.rt.config.machine.send_overhead)
        return pc + 1

    def op_prepare(self, instr, pc: int) -> Generator:
        dst_op, op, src_op = instr.args
        src_r = self.resolve(src_op)
        src_block = yield from self.acquire(src_r)
        dst_r = self.resolve(dst_op)
        if dst_r.slices is not None:
            raise SIPError("prepare of a sub-block slice is not supported")
        if src_r.slices is not None:
            src_block = self._materialize_view(src_r, src_block)
        bid = dst_r.block_id
        self._sanitize("served", self.served_epoch, bid, op, instr, pc)
        accum_key = (
            None
            if op == "="
            else self.engine.accums.next_key(self._iter_key, self.worker_index)
        )
        self.engine.post_prepare(bid, op, src_block, accum_key)
        yield Timeout(self.rt.config.machine.send_overhead)
        return pc + 1

    def _materialize_view(self, r: ResolvedOperand, block: Block) -> Block:
        data = None
        if block.data is not None:
            data = block.data[r.slices].copy()
        return Block(r.shape, data)

    def op_sip_barrier(self, instr, pc: int) -> Generator:
        yield from self._wait_events(self.engine.outstanding_put_acks)
        yield from self._barrier_wait(self.rt.worker_barrier)
        self.epoch += 1
        self._clear_cache_kind("distributed")
        return pc + 1

    def op_server_barrier(self, instr, pc: int) -> Generator:
        yield from self._wait_events(self.engine.outstanding_prepare_acks)
        yield from self._barrier_wait(self.rt.server_barrier_obj)
        self.served_epoch += 1
        self._clear_cache_kind("served")
        return pc + 1

    def _barrier_wait(self, barrier) -> Generator:
        t0 = self.sim.now
        yield from barrier.wait(self.comm)
        self._wait_acc += self.sim.now - t0

    def _clear_cache_kind(self, kind: str) -> None:
        drop = [
            bid
            for bid, entry in list(self.cache.items())
            if self.rt.array_desc(bid.array_id).kind == kind and not entry.pending
        ]
        for bid in drop:
            self.cache.remove(bid)
            self.rt.replicas.discard(bid, self.worker_index)

    def op_collective(self, instr, pc: int) -> Generator:
        scalar_id = instr.args[0]
        seq = self.collective_seq
        self.collective_seq += 1
        reply_tag = self.next_tag()
        req = self.comm.irecv(source=self.config.master_rank, tag=reply_tag)
        base, deltas, poisoned = self.scalar_ledger.contribution(scalar_id)
        payload = CollectiveContribution(
            seq,
            self.worker_index,
            self.scalars[scalar_id],
            reply_tag,
            base=base,
            deltas=deltas,
            poisoned=poisoned,
        )

        def send() -> None:
            self.comm.isend(payload, dest=self.config.master_rank, tag=MASTER_TAG)

        send()
        msg = yield from self._reliable_wait(
            req.event, send, "collective_retries", "collective"
        )
        total = msg.payload.value
        self.scalars[scalar_id] = total
        self.scalar_ledger.absorb_reduction(scalar_id, total)
        return pc + 1

    # -- serialization & checkpoint -------------------------------------------
    def op_blocks_to_list(self, instr, pc: int) -> Generator:
        array_id = instr.args[0]
        yield from self._serialize_array(array_id)
        yield from self._barrier_wait(self.rt.worker_barrier)
        return pc + 1

    def _serialize_array(self, array_id: int) -> Generator:
        desc = self.rt.array_desc(array_id)
        store = self.rt.external_store.setdefault(desc.name.lower(), {})
        total = 0
        for bid in self.owned:
            if bid.array_id == array_id:
                self._fold_accums(bid)
        for bid, block in self.owned.items():
            if bid.array_id != array_id:
                continue
            self.memman.touch(bid)
            store[bid.coords] = (
                block.data.copy() if block.data is not None else block.shape
            )
            total += block.nbytes
        if total:
            yield Timeout(total / self.rt.config.machine.copy_bandwidth)

    def op_list_to_blocks(self, instr, pc: int) -> Generator:
        array_id = instr.args[0]
        desc = self.rt.array_desc(array_id)
        store = self.rt.external_store.get(desc.name.lower())
        if store is None:
            raise SIPError(
                f"list_to_blocks: no serialized data for array {desc.name!r} "
                "in the external store"
            )
        placement = self.rt.placements[array_id]
        total = 0
        for coords in placement.owned_by(self.worker_index):
            saved = store.get(coords)
            if saved is None:
                # blocks are materialized only when filled with data; a
                # block absent from the store was never written
                continue
            bid = BlockId(array_id, coords)
            self.engine.accums.discard(bid)  # restore overwrites
            block = self.owned.get(bid)
            if block is None:
                block = self._alloc_block(bid, zero=False)
                self.owned[bid] = block
            else:
                self.memman.touch(bid)
                self._writable(block)
            if block.data is not None:
                block.data[...] = saved
            total += block.nbytes
        if total:
            yield Timeout(total / self.rt.config.machine.copy_bandwidth)
        yield from self._barrier_wait(self.rt.worker_barrier)
        return pc + 1

    def op_checkpoint(self, instr, pc: int) -> Generator:
        """Serialize every distributed array plus the scalar state."""
        for array_id, desc in enumerate(self.rt.program.array_table):
            if desc.kind == "distributed":
                yield from self._serialize_array(array_id)
        if self.worker_index == 0:
            self.rt.external_store["__scalars__"] = list(self.scalars)
            self.rt.external_store["__checkpoint_seq__"] = self.checkpoint_seq
        self.checkpoint_seq += 1
        yield from self._barrier_wait(self.rt.worker_barrier)
        return pc + 1
