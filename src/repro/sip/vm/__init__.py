"""The SIP worker VM, split into focused modules.

* :mod:`.interpreter` -- the bytecode interpreter core (WorkerProcess);
* :mod:`.ledger` -- the collective scalar ledger (canonical reductions);
* :mod:`.prefetch` -- the lookahead prefetcher (engine hints);
* :mod:`.resilience` -- fault hooks (retries, backoff, reliable waits).

Block movement itself lives one layer down in
:mod:`repro.sip.blockio`; the interpreter is a client of the per-rank
:class:`~repro.sip.blockio.BlockTransferEngine`.
"""

from ..decode import ResolvedOperand
from .interpreter import WorkerProcess
from .ledger import ScalarLedger
from .prefetch import LookaheadPrefetcher
from .resilience import ResilientMessaging

__all__ = [
    "LookaheadPrefetcher",
    "ResilientMessaging",
    "ResolvedOperand",
    "ScalarLedger",
    "WorkerProcess",
]
