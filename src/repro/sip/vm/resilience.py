"""Fault hooks for the worker: retries, backoff, reliable waits.

All of this is inert unless a :class:`~repro.simmpi.faults.FaultPlan`
or ``config.resilient`` is set; the mixin exists so the interpreter
core stays free of the retry machinery.  Host classes provide ``sim``,
``comm``, ``config``, ``rt``, ``resilience``, ``worker_index`` and the
``_wait_acc`` accounting field.
"""

from __future__ import annotations

from typing import Generator

from ...simmpi import AnyOf
from ..config import SIPError

__all__ = ["ResilientMessaging"]


class ResilientMessaging:
    """Retry/backoff/reliable-wait behaviour shared by worker paths."""

    def next_tag(self) -> int:
        self._tag_counter += 1
        return self._tag_counter

    def next_msg_seq(self) -> int:
        """Sender-unique sequence for puts/prepares (dedup on retry)."""
        if not self.rt.resilient:
            return -1
        self._msg_seq += 1
        return self._msg_seq

    def _wait(self, event) -> Generator:
        """Wait on an event, accounting the time as wait time."""
        t0 = self.sim.now
        value = yield event
        self._wait_acc += self.sim.now - t0
        return value

    def _wait_events(self, events: list) -> Generator:
        while events:
            ev = events.pop()
            if not ev.triggered:
                yield from self._wait(ev)

    def _trace_fault(self, kind: str, detail: object) -> None:
        tracer = self.config.tracer
        if tracer is not None and hasattr(tracer, "record_fault"):
            tracer.record_fault(self.sim.now, self.rank, kind, str(detail))

    def _bump_retry(self, counter: str, what: str, attempt: int) -> None:
        setattr(self.resilience, counter, getattr(self.resilience, counter) + 1)
        self._trace_fault(f"retry-{what}", f"attempt {attempt}")

    def _reliable_wait(self, event, resend, counter: str, what: str) -> Generator:
        """Like :meth:`_wait`, but re-send the request whenever the reply
        has not arrived within the (exponentially growing) timeout."""
        if not self.rt.resilient:
            return (yield from self._wait(event))
        t0 = self.sim.now
        timeout = self.config.retry_timeout
        attempts = 0
        while not event.triggered:
            yield AnyOf([event, self.sim.timeout_event(timeout)])
            if event.triggered:
                break
            attempts += 1
            if attempts > self.config.retry_limit:
                raise SIPError(
                    f"worker{self.worker_index}: no {what} reply after "
                    f"{attempts} attempts; presuming the peer is dead"
                )
            self._bump_retry(counter, what, attempts)
            resend()
            timeout *= self.config.retry_backoff
        self._wait_acc += self.sim.now - t0
        return event.value

    def spawn_retry_monitor(self, event, resend, counter: str, what: str) -> None:
        """Watch a fire-and-forget request in the background and re-send
        it until its completion event fires (resilient mode only)."""
        if not self.rt.resilient:
            return
        self.sim.spawn(
            self._retry_monitor(event, resend, counter, what),
            name=f"worker{self.worker_index}.retry-{what}",
        )

    def _retry_monitor(self, event, resend, counter: str, what: str) -> Generator:
        timeout = self.config.retry_timeout
        attempts = 0
        while not event.triggered:
            yield AnyOf([event, self.sim.timeout_event(timeout)])
            if event.triggered:
                return
            attempts += 1
            if attempts > self.config.retry_limit:
                raise SIPError(
                    f"worker{self.worker_index}: no {what} reply after "
                    f"{attempts} attempts; presuming the peer is dead"
                )
            self._bump_retry(counter, what, attempts)
            resend()
            timeout *= self.config.retry_backoff
