"""The collective scalar ledger.

Each scalar's value is decomposed into a non-pardo *base* plus
per-iteration *deltas* keyed ``(pardo_id, activation, iteration)``, so
the master can reduce collectives in canonical iteration order --
bitwise identical results no matter which worker ran which iteration.
Updates the decomposition cannot represent (scaling with deltas
outstanding, increments computed from a mid-accumulation scalar) poison
the scalar, falling back to the legacy worker-order reduction.
"""

from __future__ import annotations

__all__ = ["ScalarLedger"]


class ScalarLedger:
    def __init__(self, n_scalars: int) -> None:
        self.base: list[float] = [0.0] * n_scalars
        self.deltas: list[dict[tuple, float]] = [{} for _ in range(n_scalars)]
        self.poisoned: list[bool] = [False] * n_scalars

    def note(self, scalar_id, op, value, iter_key, rpn=()) -> None:
        """Record one scalar update against the decomposition.

        ``iter_key`` is the identity of the running pardo iteration, or
        None outside one (SPMD statements fold into the base).
        """
        if iter_key is None:
            base = self.base
            if op == "=":
                base[scalar_id] = value
                self.deltas[scalar_id].clear()
                self.poisoned[scalar_id] = False
            elif op == "+=":
                base[scalar_id] += value
            elif op == "-=":
                base[scalar_id] -= value
            else:
                # scaling distributes over the base but not over pending
                # deltas; with deltas outstanding the decomposition no
                # longer holds
                if self.deltas[scalar_id]:
                    self.poisoned[scalar_id] = True
                base[scalar_id] *= value
        elif op in ("+=", "-=") and not self.order_dependent(rpn):
            deltas = self.deltas[scalar_id]
            signed = value if op == "+=" else -value
            deltas[iter_key] = deltas.get(iter_key, 0.0) + signed
        else:
            # a non-additive update inside a pardo iteration (or an
            # increment computed from another accumulating scalar) makes
            # the per-iteration decomposition assignment-dependent
            self.poisoned[scalar_id] = True

    def order_dependent(self, rpn) -> bool:
        """Whether an expression reads a scalar still mid-accumulation."""
        for item in rpn:
            if item[0] == "scalar":
                sid = item[1]
                if self.deltas[sid] or self.poisoned[sid]:
                    return True
        return False

    def contribution(self, scalar_id: int) -> tuple[float, tuple, bool]:
        """The (base, sorted deltas, poisoned) triple shipped to the master."""
        return (
            self.base[scalar_id],
            tuple(sorted(self.deltas[scalar_id].items())),
            self.poisoned[scalar_id],
        )

    def absorb_reduction(self, scalar_id: int, total: float) -> None:
        """A collective completed: the reduced value becomes the scalar's
        new base everywhere."""
        self.base[scalar_id] = total
        self.deltas[scalar_id].clear()
        self.poisoned[scalar_id] = False
