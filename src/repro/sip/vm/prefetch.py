"""The lookahead prefetcher: speculative gets for upcoming iterations.

Resolves the get/request/prefetch operands of the next few loop
iterations against hypothetical index bindings and hands the resulting
block ids to the transfer engine as *hints* -- never waiting, never
faulting, and stopping as soon as the engine reports no headroom (the
single backpressure predicate that used to be two copy-pasted
``capacity - 2`` guards).
"""

from __future__ import annotations

from ...sial.bytecode import Op
from ..config import SIPError

__all__ = ["LookaheadPrefetcher"]


class LookaheadPrefetcher:
    def __init__(self, vm) -> None:
        self.vm = vm
        self.engine = vm.engine

    def _hint(self, instr, r) -> bool:
        """Hand one resolved operand to the engine; False = stop this pass."""
        vm = self.vm
        op = instr.op
        if op == Op.PREFETCH:
            # optimizer hints fetch by the operand's kind
            op = Op.GET if r.kind == "distributed" else Op.REQUEST
        if op == Op.GET:
            if vm.rt.owner_rank(r.block_id) == vm.rank:
                return True
            return self.engine.hint(r.block_id, "get", mark_refetch=False)
        if op == Op.REQUEST:
            return self.engine.hint(r.block_id, "request", mark_refetch=False)
        return True

    def future(self, get_pcs: tuple[int, ...], index_id: int, future_values) -> None:
        """Issue gets for upcoming iterations of one loop index."""
        vm = self.vm
        if not get_pcs or vm.config.prefetch_depth == 0:
            return
        saved = vm.index_values.get(index_id)
        instrs = vm._instrs
        try:
            for v in future_values:
                if not self.engine.headroom():
                    break  # leave room for demand fetches
                vm.index_values[index_id] = v
                for gpc in get_pcs:
                    instr = instrs[gpc]
                    try:
                        r = vm.resolve(instr.args[0])
                    except SIPError:
                        continue  # depends on an index not currently bound
                    if not self._hint(instr, r):
                        # cache full of pending blocks: stop prefetching
                        return
        finally:
            # the early returns above must not leak a future index value
            # into the running iteration's bindings
            if saved is None:
                vm.index_values.pop(index_id, None)
            else:
                vm.index_values[index_id] = saved

    def pardo(
        self, get_pcs: tuple[int, ...], index_ids: tuple[int, ...], tuples
    ) -> None:
        """Issue gets for upcoming pardo iterations in the current chunk."""
        vm = self.vm
        if not get_pcs or vm.config.prefetch_depth == 0:
            return
        saved = {i: vm.index_values.get(i) for i in index_ids}
        instrs = vm._instrs
        for combo in tuples:
            if not self.engine.headroom():
                break  # leave room for demand fetches
            for i, v in zip(index_ids, combo):
                vm.index_values[i] = v
            for gpc in get_pcs:
                instr = instrs[gpc]
                try:
                    r = vm.resolve(instr.args[0])
                except SIPError:
                    continue
                if not self._hint(instr, r):
                    break
        for i, v in saved.items():
            if v is None:
                vm.index_values.pop(i, None)
            else:
                vm.index_values[i] = v
