"""User super instructions (the SIAL ``execute`` statement).

New computational kernels can be added to the SIP without changing the
SIAL language (paper, Section IV-C): register a Python callable under a
name and invoke it from SIAL with ``execute name args...``.

The callable receives a :class:`SuperCall`:

* ``call.blocks``  -- the block arguments as
  :class:`~repro.sip.backend.KernelOperand` (writable ndarray views in
  real mode, shape-only in model mode);
* ``call.scalars`` -- the scalar arguments by position;
* ``call.real``    -- whether data is present.

It may return a flop count (float) used for cost modeling; returning
None charges a default elementwise cost over the block arguments.
Super instructions must not communicate -- they only see their
arguments, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .backend import KernelOperand
from .config import SIPError

__all__ = ["SuperCall", "SuperInstructionRegistry", "GLOBAL_REGISTRY", "register"]


@dataclass
class SuperCall:
    """Arguments handed to a user super instruction."""

    name: str
    blocks: list[KernelOperand]
    scalars: list[float]
    real: bool


SuperFn = Callable[[SuperCall], Optional[float]]


@dataclass
class SuperInstructionRegistry:
    """Name -> implementation mapping, with a global default table."""

    table: dict[str, SuperFn] = field(default_factory=dict)

    def register(self, name: str, fn: SuperFn) -> None:
        key = name.lower()
        if key in self.table:
            raise SIPError(f"super instruction {name!r} already registered")
        self.table[key] = fn

    def lookup(self, name: str) -> SuperFn:
        fn = self.table.get(name.lower())
        if fn is None:
            known = ", ".join(sorted(self.table)) or "(none)"
            raise SIPError(
                f"unknown super instruction {name!r}; registered: {known}"
            )
        return fn

    def merged_with(self, extra: dict[str, SuperFn]) -> "SuperInstructionRegistry":
        merged = dict(self.table)
        for name, fn in extra.items():
            merged[name.lower()] = fn
        return SuperInstructionRegistry(merged)


GLOBAL_REGISTRY = SuperInstructionRegistry()


def register(name: str) -> Callable[[SuperFn], SuperFn]:
    """Decorator registering a super instruction in the global table."""

    def deco(fn: SuperFn) -> SuperFn:
        GLOBAL_REGISTRY.register(name, fn)
        return fn

    return deco
