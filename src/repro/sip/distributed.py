"""Distributed arrays: static block placement and barrier-misuse detection.

Blocks of a distributed array are assigned to workers with a simple
static strategy (paper, Section V-B): the linearized block coordinate
modulo the number of workers.  The applications' irregular access
patterns show little locality, so this works well in practice and --
exactly as the paper argues -- the placement could be swapped out here
without touching any SIAL program.

The runtime also detects most improper uses of barriers (paper,
Section IV-C): within one barrier epoch, a put-'=' conflicts with any
other access to the same block by a different worker, and a get
conflicts with any write.  Atomic accumulate (put +=) operations do not
conflict with each other.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from math import prod
from typing import Callable, Optional

from .blocks import BlockId, ResolvedIndexTable
from .config import SIPError

__all__ = ["Placement", "ReplicaMap", "BarrierViolation", "ConflictTracker"]


class BarrierViolation(SIPError):
    """Conflicting accesses to an array without an intervening barrier."""


class Placement:
    """Static block-to-worker mapping for one distributed array."""

    def __init__(
        self, table: ResolvedIndexTable, array_id: int, n_workers: int
    ) -> None:
        desc = table.program.array_table[array_id]
        self.array_id = array_id
        self.n_workers = n_workers
        dims = [table[i].n_segments for i in desc.index_ids]
        self.dims = dims
        # row-major strides over block coordinates
        strides = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        self.strides = tuple(reversed(strides))
        self.n_blocks = prod(dims, start=1)

    def linearize(self, coords: tuple[int, ...]) -> int:
        return sum((c - 1) * s for c, s in zip(coords, self.strides))

    def owner_index(self, coords: tuple[int, ...]) -> int:
        """0-based worker index owning the block at these coordinates."""
        return self.linearize(coords) % self.n_workers

    def owned_by(self, worker_index: int) -> list[tuple[int, ...]]:
        """All block coordinates owned by one worker."""
        out = []
        for lin in range(worker_index, self.n_blocks, self.n_workers):
            out.append(self.delinearize(lin))
        return out

    def delinearize(self, lin: int) -> tuple[int, ...]:
        coords = []
        for s in self.strides:
            coords.append(lin // s + 1)
            lin %= s
        return tuple(coords)


class ReplicaMap:
    """Recently cached replicas of remote blocks, by block id.

    Workers note each block they fetch into their LRU cache; the
    locality scheduler reads the map to steer iterations toward workers
    that already hold a copy.  The map is a *hint*, not a directory: a
    bounded number of recent holders is kept per block, entries are
    discarded on barrier-epoch cache clears but may outlive silent LRU
    evictions, and staleness only ever mis-scores an assignment -- it
    can never affect results, because every rank still fetches through
    the normal ownership protocol.
    """

    def __init__(self, history: int = 2) -> None:
        self.history = history
        self._holders: dict[BlockId, OrderedDict[int, None]] = {}

    def note(self, block_id: BlockId, worker_index: int) -> None:
        if self.history <= 0:
            return
        holders = self._holders.setdefault(block_id, OrderedDict())
        holders.pop(worker_index, None)
        holders[worker_index] = None
        while len(holders) > self.history:
            holders.popitem(last=False)

    def discard(self, block_id: BlockId, worker_index: int) -> None:
        holders = self._holders.get(block_id)
        if holders is None:
            return
        holders.pop(worker_index, None)
        if not holders:
            del self._holders[block_id]

    def holders(self, block_id: BlockId) -> tuple[int, ...]:
        holders = self._holders.get(block_id)
        return tuple(holders) if holders else ()

    def __len__(self) -> int:
        return len(self._holders)


@dataclass
class _EpochRecord:
    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)
    accumulators: set[int] = field(default_factory=set)


class ConflictTracker:
    """Owner-side epoch-scoped conflict detection for one array class.

    One tracker guards all blocks a rank owns (distributed arrays on
    workers, served arrays on I/O servers); the matching barrier resets
    it.

    A ``sink`` callable turns the tracker into a recorder: violations
    are reported to it (the sanitizer collects them) instead of raised,
    and the run continues.
    """

    def __init__(
        self,
        name: str,
        enabled: bool = True,
        sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self.enabled = enabled
        self.sink = sink
        self._records: dict[BlockId, _EpochRecord] = {}

    def _violation(self, message: str) -> None:
        if self.sink is not None:
            self.sink(message)
            return
        raise BarrierViolation(message)

    def record_read(self, worker: int, block_id: BlockId) -> None:
        if not self.enabled:
            return
        rec = self._records.setdefault(block_id, _EpochRecord())
        others_wrote = (rec.writers | rec.accumulators) - {worker}
        if others_wrote:
            self._violation(
                f"{self.name}: worker {worker} reads block {block_id} written "
                f"by worker(s) {sorted(others_wrote)} in the same epoch; "
                "separate conflicting accesses with the appropriate barrier"
            )
        rec.readers.add(worker)

    def record_write(self, worker: int, block_id: BlockId, op: str) -> None:
        if not self.enabled:
            return
        rec = self._records.setdefault(block_id, _EpochRecord())
        other_readers = rec.readers - {worker}
        if other_readers:
            self._violation(
                f"{self.name}: worker {worker} writes block {block_id} read "
                f"by worker(s) {sorted(other_readers)} in the same epoch; "
                "separate conflicting accesses with the appropriate barrier"
            )
        if op == "+=":
            # accumulates commute with each other but not with plain writes
            other_writers = rec.writers - {worker}
            if other_writers:
                self._violation(
                    f"{self.name}: accumulate to block {block_id} conflicts "
                    f"with plain put by worker(s) {sorted(other_writers)}"
                )
            rec.accumulators.add(worker)
        else:
            others = (rec.writers | rec.accumulators) - {worker}
            if others:
                self._violation(
                    f"{self.name}: worker {worker} overwrites block {block_id} "
                    f"also written by worker(s) {sorted(others)} in the same "
                    "epoch"
                )
            rec.writers.add(worker)

    def new_epoch(self) -> None:
        self._records.clear()
