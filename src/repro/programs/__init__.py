"""SIAL application programs and their drivers.

This package is the reproduction's "ACES III" layer: SIAL source for
the paper's workloads (:mod:`~repro.programs.library`), the user super
instructions they call (:mod:`~repro.programs.supers`), and drivers
that wire chemistry inputs through the SIP and compare against the
numpy references (:mod:`~repro.programs.drivers`).
"""

from .drivers import (
    SialOutcome,
    run_ao2mo,
    run_checkpoint_demo,
    run_fock_build,
    run_ccsd,
    run_ccsd_t,
    run_lccd,
    run_lccd_anderson,
    run_mp2,
    run_paper_contraction,
    run_uhf_mp2,
)
from .library import (
    ALL_PROGRAMS,
    AO2MO_TRANSFORM,
    CHECKPOINT_DEMO,
    FOCK_BUILD,
    LCCD_ANDERSON,
    LCCD_ITERATION,
    MP2_ENERGY,
    PAPER_CONTRACTION,
    UHF_MP2_ENERGY,
)
from .ccsd_sial import CCSD_SIAL
from .triples_sial import CCSD_T_SIAL
from .supers import cc_denominator, make_energy_denominator, mp2_denominator

__all__ = [
    "ALL_PROGRAMS",
    "CCSD_SIAL",
    "CCSD_T_SIAL",
    "AO2MO_TRANSFORM",
    "CHECKPOINT_DEMO",
    "FOCK_BUILD",
    "LCCD_ANDERSON",
    "LCCD_ITERATION",
    "MP2_ENERGY",
    "PAPER_CONTRACTION",
    "UHF_MP2_ENERGY",
    "SialOutcome",
    "cc_denominator",
    "make_energy_denominator",
    "mp2_denominator",
    "run_checkpoint_demo",
    "run_fock_build",
    "run_ccsd",
    "run_ccsd_t",
    "run_lccd",
    "run_lccd_anderson",
    "run_ao2mo",
    "run_mp2",
    "run_uhf_mp2",
    "run_paper_contraction",
]
