"""Drivers wiring chemistry inputs into the SIAL programs.

Each driver prepares a molecule's synthetic integrals, runs the
reference SCF, lays the required integral tensors out as SIP input
arrays, registers the needed super instructions, executes the SIAL
program on the simulated SIP, and returns both the SIAL result and the
numpy reference value so callers (examples, tests, benchmarks) can
compare them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..chem import (
    Molecule,
    ao_to_mo,
    fock_rhf,
    lccd,
    make_integrals,
    mp2_energy_rhf,
    n_occ_spin,
    rhf,
    spin_orbital_eri,
)
from ..einsum_cache import cached_einsum
from ..sip import RunResult, SIPConfig, run_source
from . import library, supers

__all__ = [
    "SialOutcome",
    "run_paper_contraction",
    "run_mp2",
    "run_uhf_mp2",
    "run_ccsd",
    "run_ccsd_t",
    "run_ao2mo",
    "run_lccd",
    "run_fock_build",
    "run_checkpoint_demo",
]


@dataclass
class SialOutcome:
    """A SIAL run plus the numpy reference it should reproduce."""

    value: float | np.ndarray
    reference: float | np.ndarray
    result: RunResult

    @property
    def error(self) -> float:
        return float(np.max(np.abs(np.asarray(self.value) - np.asarray(self.reference))))


def _default_config(**overrides) -> SIPConfig:
    defaults = dict(workers=3, io_servers=1, segment_size=2)
    defaults.update(overrides)
    return SIPConfig(**defaults)


def run_paper_contraction(
    n_basis: int = 6,
    n_occ: int = 4,
    seed: int = 5,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """The Section IV-D example: R = sum_LS V(M,N,L,S) T(L,S,I,J)."""
    rng = np.random.default_rng(seed)
    ints = make_integrals(n_basis, seed=seed)
    t = rng.standard_normal((n_basis, n_basis, n_occ, n_occ))
    config = config or _default_config()
    config.inputs = {"T": t}
    config.integral_source = ints.eri_block
    result = run_source(
        library.PAPER_CONTRACTION,
        config,
        symbolics={"norb": n_basis, "nocc": n_occ},
    )
    reference = cached_einsum("mnls,lsij->mnij", ints.eri, t)
    return SialOutcome(value=result.array("R"), reference=reference, result=result)


def run_mp2(
    molecule: Optional[Molecule] = None,
    n_basis: int = 8,
    n_occ: int = 3,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Closed-shell MP2 energy via the MP2_ENERGY SIAL program."""
    if molecule is not None:
        n_basis, n_occ = molecule.n_basis, molecule.n_occ
    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    o, v = slice(0, n_occ), slice(n_occ, n_basis)
    ovov = np.ascontiguousarray(eri_mo[o, v, o, v])
    e_occ, e_virt = scf.mo_energy[o], scf.mo_energy[v]

    config = config or _default_config()
    config.inputs = {"V": ovov}
    config.superinstructions = {
        "mp2_denominator": supers.mp2_denominator(e_occ, e_virt)
    }
    result = run_source(
        library.MP2_ENERGY,
        config,
        symbolics={"no": n_occ, "nv": n_basis - n_occ},
    )
    reference = mp2_energy_rhf(eri_mo, scf.mo_energy, n_occ)
    return SialOutcome(
        value=result.scalar("emp2"), reference=reference, result=result
    )


def run_uhf_mp2(
    n_basis: int = 7,
    n_alpha: int = 3,
    n_beta: int = 2,
    seed: int = 5,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Open-shell MP2 via the UHF_MP2_ENERGY SIAL program (Fig. 7)."""
    from ..chem import mp2_energy_uhf, uhf

    ints = make_integrals(n_basis, seed=seed)
    scf = uhf(ints.h, ints.eri, n_alpha, n_beta)
    ca, cb = scf.mo_coeff, scf.mo_coeff_b
    ea, eb = scf.mo_energy, scf.mo_energy_b
    mo_aa = ao_to_mo(ints.eri, ca)
    mo_bb = ao_to_mo(ints.eri, cb)
    # mixed chemists' integrals (alpha alpha | beta beta)
    tmp = cached_einsum("mp,mnls->pnls", ca, ints.eri)
    tmp = cached_einsum("nq,pnls->pqls", ca, tmp)
    tmp = cached_einsum("lr,pqls->pqrs", cb, tmp)
    mo_ab = cached_einsum("st,pqrs->pqrt", cb, tmp)

    oa, va = slice(0, n_alpha), slice(n_alpha, n_basis)
    ob, vb = slice(0, n_beta), slice(n_beta, n_basis)
    config = config or _default_config()
    config.inputs = {
        "VAA": np.ascontiguousarray(mo_aa[oa, va, oa, va]),
        "VBB": np.ascontiguousarray(mo_bb[ob, vb, ob, vb]),
        "VAB": np.ascontiguousarray(mo_ab[oa, va, ob, vb]),
    }
    config.superinstructions = {
        "denom_aa": supers.mp2_denominator(ea[oa], ea[va]),
        "denom_bb": supers.mp2_denominator(eb[ob], eb[vb]),
        "denom_ab": supers.make_energy_denominator(
            [(ea[oa], +1.0), (ea[va], -1.0), (eb[ob], +1.0), (eb[vb], -1.0)]
        ),
    }
    result = run_source(
        library.UHF_MP2_ENERGY,
        config,
        symbolics={
            "noa": n_alpha,
            "nva": n_basis - n_alpha,
            "nob": n_beta,
            "nvb": n_basis - n_beta,
        },
    )
    reference = mp2_energy_uhf(
        mo_aa[oa, va, oa, va],
        mo_bb[ob, vb, ob, vb],
        mo_ab[oa, va, ob, vb],
        ea[oa],
        ea[va],
        eb[ob],
        eb[vb],
    )
    return SialOutcome(
        value=result.scalar("emp2"), reference=reference, result=result
    )


def run_ao2mo(
    n_basis: int = 5,
    seed: int = 3,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """The four-step AO->MO transform via the AO2MO_TRANSFORM program."""
    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, max(1, n_basis // 3))
    config = config or _default_config()
    config.inputs = {"C": scf.mo_coeff}
    config.integral_source = ints.eri_block
    result = run_source(
        library.AO2MO_TRANSFORM, config, symbolics={"nb": n_basis}
    )
    reference = ao_to_mo(ints.eri, scf.mo_coeff)
    return SialOutcome(
        value=result.array("VMO"), reference=reference, result=result
    )


def run_lccd(
    n_basis: int = 6,
    n_occ: int = 2,
    iterations: int = 4,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Spin-orbital LCCD via the LCCD_ITERATION SIAL program.

    The SIAL run and the numpy reference perform the same fixed number
    of sweeps, so the energies agree to floating-point accuracy.
    """
    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    no = n_occ_spin(n_occ)
    nso = 2 * n_basis
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)

    config = config or _default_config()
    config.inputs = {
        "OOVV": np.ascontiguousarray(eri_so[o, o, v, v]),
        "VVVV": np.ascontiguousarray(eri_so[v, v, v, v]),
        "OOOO": np.ascontiguousarray(eri_so[o, o, o, o]),
        "OVVO": np.ascontiguousarray(eri_so[o, v, v, o]),
    }
    config.superinstructions = {
        "cc_denominator": supers.cc_denominator(eps[o], eps[v])
    }
    result = run_source(
        library.LCCD_ITERATION,
        config,
        symbolics={"no": no, "nv": nv, "niter": iterations},
    )
    reference = lccd(eps, eri_so, no, iterations=iterations)
    return SialOutcome(
        value=result.scalar("elccd"), reference=reference.e_corr, result=result
    )


def run_lccd_anderson(
    n_basis: int = 6,
    n_occ: int = 2,
    iterations: int = 4,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Anderson-accelerated LCCD via the LCCD_ANDERSON SIAL program.

    Same fixed-sweep algorithm as :func:`repro.chem.lccd_anderson`, so
    the SIAL and numpy energies agree to floating-point accuracy.
    """
    from ..chem import lccd_anderson

    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    no = n_occ_spin(n_occ)
    nso = 2 * n_basis
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)

    config = config or _default_config()
    config.inputs = {
        "OOVV": np.ascontiguousarray(eri_so[o, o, v, v]),
        "VVVV": np.ascontiguousarray(eri_so[v, v, v, v]),
        "OOOO": np.ascontiguousarray(eri_so[o, o, o, o]),
        "OVVO": np.ascontiguousarray(eri_so[o, v, v, o]),
    }
    config.superinstructions = {
        "cc_denominator": supers.cc_denominator(eps[o], eps[v])
    }
    result = run_source(
        library.LCCD_ANDERSON,
        config,
        symbolics={"no": no, "nv": nv, "niter": iterations},
    )
    reference = lccd_anderson(eps, eri_so, no, iterations=iterations)
    return SialOutcome(
        value=result.scalar("elccd"), reference=reference.e_corr, result=result
    )


def run_ccsd(
    n_basis: int = 5,
    n_occ: int = 2,
    iterations: int = 3,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Full spin-orbital CCSD via the CCSD_SIAL program.

    Runs exactly ``iterations`` amplitude sweeps; the reference is
    :func:`repro.chem.ccsd` driven for the same sweep count, so the
    energies agree to floating-point accuracy.
    """
    from ..chem import ccsd
    from .ccsd_sial import CCSD_SIAL

    if config is None:
        # coarser blocks keep the (deep) CCSD interpretation fast
        config = _default_config(segment_size=3)
    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    no = n_occ_spin(n_occ)
    nso = 2 * n_basis
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)

    config = config or _default_config()
    config.inputs = {
        "OOOO": np.ascontiguousarray(eri_so[o, o, o, o]),
        "OOOV": np.ascontiguousarray(eri_so[o, o, o, v]),
        "OOVO": np.ascontiguousarray(eri_so[o, o, v, o]),
        "OOVV": np.ascontiguousarray(eri_so[o, o, v, v]),
        "OVOV": np.ascontiguousarray(eri_so[o, v, o, v]),
        "OVVO": np.ascontiguousarray(eri_so[o, v, v, o]),
        "OVVV": np.ascontiguousarray(eri_so[o, v, v, v]),
        "OVOO": np.ascontiguousarray(eri_so[o, v, o, o]),
        "VOVV": np.ascontiguousarray(eri_so[v, o, v, v]),
        "VVVO": np.ascontiguousarray(eri_so[v, v, v, o]),
        "VVVV": np.ascontiguousarray(eri_so[v, v, v, v]),
    }
    config.superinstructions = {
        "cc_denominator4": supers.cc_denominator(eps[o], eps[v]),
        "cc_denominator2": supers.make_energy_denominator(
            [(eps[o], +1.0), (eps[v], -1.0)]
        ),
    }
    result = run_source(
        CCSD_SIAL,
        config,
        symbolics={"no": no, "nv": nv, "niter": iterations},
    )
    # reference: exactly `iterations` sweeps (tolerance 0 never triggers
    # early exit), energy evaluated from the final amplitudes
    reference = ccsd(
        eps, eri_so, no, max_iterations=iterations, tolerance=0.0
    )
    return SialOutcome(
        value=result.scalar("ecc"),
        reference=reference.history[iterations],
        result=result,
    )


def run_ccsd_t(
    n_basis: int = 4,
    n_occ: int = 2,
    sweeps: int = 2,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """The (T) triples correction via the CCSD_T_SIAL program.

    Amplitudes come from ``sweeps`` iterations of the numpy CCSD; the
    reference is :func:`repro.chem.ccsd_t` on those same amplitudes, so
    the SIAL and numpy energies agree to floating-point accuracy.
    """
    from ..chem import ccsd, ccsd_t
    from .triples_sial import CCSD_T_SIAL

    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    no = n_occ_spin(n_occ)
    nso = 2 * n_basis
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)

    cc = ccsd(eps, eri_so, no, max_iterations=sweeps, tolerance=0.0)

    if config is None:
        config = _default_config(subsegments_per_segment=2)
    config.inputs = {
        "T1": cc.t1,
        "T2": cc.t2,
        "OOVV": np.ascontiguousarray(eri_so[o, o, v, v]),
        "VOVV": np.ascontiguousarray(eri_so[v, o, v, v]),
        "OVOO": np.ascontiguousarray(eri_so[o, v, o, o]),
    }
    config.superinstructions = {
        "triples_weight": supers.triples_weight(eps[o], eps[v])
    }
    result = run_source(
        CCSD_T_SIAL,
        config,
        symbolics={"no": no, "nv": nv},
    )
    reference = ccsd_t(eps, eri_so, cc.t1, cc.t2, no)
    return SialOutcome(
        value=result.scalar("etr"), reference=reference, result=result
    )


def run_fock_build(
    n_basis: int = 8,
    n_occ: int = 3,
    seed: int = 42,
    config: Optional[SIPConfig] = None,
) -> SialOutcome:
    """Closed-shell Fock build via the FOCK_BUILD SIAL program."""
    ints = make_integrals(n_basis, seed=seed)
    scf = rhf(ints.h, ints.eri, n_occ)
    config = config or _default_config()
    config.inputs = {"H": ints.h, "DENS": scf.density}
    config.integral_source = ints.eri_block
    result = run_source(library.FOCK_BUILD, config, symbolics={"nb": n_basis})
    reference = fock_rhf(ints.h, ints.eri, scf.density)
    return SialOutcome(value=result.array("F"), reference=reference, result=result)


def run_checkpoint_demo(
    n_basis: int = 6,
    config_factory=None,
) -> tuple[SialOutcome, SialOutcome]:
    """First run checkpoints; second run restarts from the store."""
    store: dict = {}

    def fresh_config():
        if config_factory is not None:
            return config_factory()
        return _default_config()

    cfg1 = fresh_config()
    cfg1.external_store = store
    first = run_source(
        library.CHECKPOINT_DEMO, cfg1, symbolics={"nb": n_basis, "restart": 0}
    )
    cfg2 = fresh_config()
    cfg2.external_store = store
    second = run_source(
        library.CHECKPOINT_DEMO, cfg2, symbolics={"nb": n_basis, "restart": 1}
    )
    reference = np.full((n_basis, n_basis), 2.0)
    return (
        SialOutcome(value=first.array("OUT"), reference=reference, result=first),
        SialOutcome(value=second.array("OUT"), reference=reference, result=second),
    )
