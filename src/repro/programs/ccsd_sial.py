"""Full spin-orbital CCSD in SIAL.

The paper's headline method, written the way ACES III writes it: every
Stanton-Gauss-Watts-Bartlett intermediate is a pardo phase over blocks,
the O(v^4) quantities (<ab||ef> and the W_abef intermediate) live on
disk-backed served arrays, orbital-energy denominators are user super
instructions, and the energy comes from collective scalar contractions.

The program runs a fixed number of amplitude sweeps and matches
:func:`repro.chem.ccsd` (run for the same sweep count with canonical
orbitals) to floating-point accuracy -- see
``tests/integration/test_ccsd_sial.py``.

Index kinds: ``moindex`` = occupied spin orbitals, ``moaindex`` =
virtual spin orbitals.  Input integral slices are physicists'
antisymmetrized <pq||rs> blocks named by their occupancy pattern
(OOVV = <ij||ab>, OVVV = <ma||ef>, ...).
"""

from __future__ import annotations

__all__ = ["CCSD_SIAL"]

CCSD_SIAL = """
sial ccsd
symbolic no
symbolic nv
symbolic niter
moindex i = 1, no
moindex j = 1, no
moindex m = 1, no
moindex n = 1, no
moaindex a = 1, nv
moaindex b = 1, nv
moaindex e = 1, nv
moaindex f = 1, nv
index iter = 1, niter

# antisymmetrized integral slices <pq||rs> (inputs)
distributed OOOO(m, n, i, j)
distributed OOOV(m, n, i, e)
distributed OOVO(m, n, e, j)
distributed OOVV(i, j, a, b)
distributed OVOV(n, a, i, f)
distributed OVVO(m, b, e, j)
distributed OVVV(m, a, e, f)
distributed OVOO(m, b, i, j)
distributed VOVV(a, m, e, f)
distributed VVVO(a, b, e, j)
served VVVV(a, b, e, f)

# amplitudes (double buffered)
distributed T1(i, a)
distributed T2(i, j, a, b)
distributed T1N(i, a)
distributed T2N(i, j, a, b)

# effective doubles and one/two-particle intermediates
distributed TAU(i, j, a, b)
distributed TAUT(i, j, a, b)
distributed FAE(a, e)
distributed FMI(m, i)
distributed FME(m, e)
distributed WMNIJ(m, n, i, j)
distributed WMBEJ(m, b, e, j)
served WABEF(a, b, e, f)

temp t4(i, j, a, b)
temp s4(i, j, a, b)
temp u4(i, j, a, b)
temp tOOOO(m, n, i, j)
temp sOOOO(m, n, i, j)
temp tVVVV(a, b, e, f)
temp sVVVV(a, b, e, f)
temp tOVVO(m, b, e, j)
temp sOVVO(m, b, e, j)
temp tOO(m, i)
temp sOO(m, i)
temp w2(a, e)
temp v2(a, e)
temp t2x(i, a)
temp s2x(i, a)
temp o4(i, e, m, a)
temp x4(j, n, f, b)
scalar e1
scalar e2
scalar ecc

# ---------------------------------------------------------------- init
# t1 = 0 (f_ov = 0 for canonical orbitals); t2 = <ij||ab> / D
pardo i, a
  t2x(i, a) = 0.0
  put T1(i, a) = t2x(i, a)
endpardo i, a
pardo i, j, a, b
  get OOVV(i, j, a, b)
  t4(i, j, a, b) = OOVV(i, j, a, b)
  execute cc_denominator4 t4(i, j, a, b)
  put T2(i, j, a, b) = t4(i, j, a, b)
endpardo i, j, a, b
sip_barrier

do iter
  # -------------------------------------------- tau and tau-tilde
  # tau  = t2 + t1 t1 - t1 t1 (exchanged)
  # taut = t2 + (t1 t1 - t1 t1 (exchanged)) / 2
  pardo i, j, a, b
    get T2(i, j, a, b)
    get T1(i, a)
    get T1(j, b)
    get T1(i, b)
    get T1(j, a)
    s4(i, j, a, b) = T1(i, a) * T1(j, b)
    s4(i, j, a, b) -= T1(i, b) * T1(j, a)
    t4(i, j, a, b) = T2(i, j, a, b)
    t4(i, j, a, b) += s4(i, j, a, b)
    put TAU(i, j, a, b) = t4(i, j, a, b)
    t4(i, j, a, b) = T2(i, j, a, b)
    t4(i, j, a, b) += 0.5 * s4(i, j, a, b)
    put TAUT(i, j, a, b) = t4(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  # -------------------------------------------- one-particle F's
  # FAE = sum_mf t1[m,f] <ma||fe> - 1/2 sum_mnf taut[m,n,a,f] <mn||ef>
  pardo a, e
    w2(a, e) = 0.0
    do m
      do f
        get T1(m, f)
        get OVVV(m, a, f, e)
        w2(a, e) += T1(m, f) * OVVV(m, a, f, e)
      enddo f
    enddo m
    do m
      do n
        do f
          get TAUT(m, n, a, f)
          get OOVV(m, n, e, f)
          v2(a, e) = TAUT(m, n, a, f) * OOVV(m, n, e, f)
          w2(a, e) -= 0.5 * v2(a, e)
        enddo f
      enddo n
    enddo m
    put FAE(a, e) = w2(a, e)
  endpardo a, e

  # FMI = sum_ne t1[n,e] <mn||ie> + 1/2 sum_nef taut[i,n,e,f] <mn||ef>
  pardo m, i
    tOO(m, i) = 0.0
    do n
      do e
        get T1(n, e)
        get OOOV(m, n, i, e)
        tOO(m, i) += T1(n, e) * OOOV(m, n, i, e)
      enddo e
    enddo n
    do n
      do e
        do f
          get TAUT(i, n, e, f)
          get OOVV(m, n, e, f)
          sOO(m, i) = TAUT(i, n, e, f) * OOVV(m, n, e, f)
          tOO(m, i) += 0.5 * sOO(m, i)
        enddo f
      enddo e
    enddo n
    put FMI(m, i) = tOO(m, i)
  endpardo m, i

  # FME = sum_nf t1[n,f] <mn||ef>
  pardo m, e
    t2x(m, e) = 0.0
    do n
      do f
        get T1(n, f)
        get OOVV(m, n, e, f)
        t2x(m, e) += T1(n, f) * OOVV(m, n, e, f)
      enddo f
    enddo n
    put FME(m, e) = t2x(m, e)
  endpardo m, e

  # -------------------------------------------- two-particle W's
  # WMNIJ = <mn||ij> + P(ij) sum_e t1[j,e] <mn||ie>
  #       + 1/4 sum_ef tau[i,j,e,f] <mn||ef>
  pardo m, n, i, j
    get OOOO(m, n, i, j)
    tOOOO(m, n, i, j) = OOOO(m, n, i, j)
    do e
      get T1(j, e)
      get T1(i, e)
      get OOOV(m, n, i, e)
      get OOOV(m, n, j, e)
      tOOOO(m, n, i, j) += T1(j, e) * OOOV(m, n, i, e)
      tOOOO(m, n, i, j) -= T1(i, e) * OOOV(m, n, j, e)
    enddo e
    do e
      do f
        get TAU(i, j, e, f)
        get OOVV(m, n, e, f)
        sOOOO(m, n, i, j) = TAU(i, j, e, f) * OOVV(m, n, e, f)
        tOOOO(m, n, i, j) += 0.25 * sOOOO(m, n, i, j)
      enddo f
    enddo e
    put WMNIJ(m, n, i, j) = tOOOO(m, n, i, j)
  endpardo m, n, i, j

  # WABEF = <ab||ef> - P(ab) sum_m t1[m,b] <am||ef>
  #       + 1/4 sum_mn tau[m,n,a,b] <mn||ef>
  pardo a, b, e, f
    request VVVV(a, b, e, f)
    tVVVV(a, b, e, f) = VVVV(a, b, e, f)
    do m
      get T1(m, b)
      get T1(m, a)
      get VOVV(a, m, e, f)
      get VOVV(b, m, e, f)
      tVVVV(a, b, e, f) -= T1(m, b) * VOVV(a, m, e, f)
      tVVVV(a, b, e, f) += T1(m, a) * VOVV(b, m, e, f)
    enddo m
    do m
      do n
        get TAU(m, n, a, b)
        get OOVV(m, n, e, f)
        sVVVV(a, b, e, f) = TAU(m, n, a, b) * OOVV(m, n, e, f)
        tVVVV(a, b, e, f) += 0.25 * sVVVV(a, b, e, f)
      enddo n
    enddo m
    prepare WABEF(a, b, e, f) = tVVVV(a, b, e, f)
  endpardo a, b, e, f

  # WMBEJ = <mb||ej> + sum_f t1[j,f] <mb||ef>
  #       - sum_n t1[n,b] <mn||ej>
  #       - sum_nf (t2[j,n,f,b]/2 + t1[j,f] t1[n,b]) <mn||ef>
  pardo m, b, e, j
    get OVVO(m, b, e, j)
    tOVVO(m, b, e, j) = OVVO(m, b, e, j)
    do f
      get T1(j, f)
      get OVVV(m, b, e, f)
      tOVVO(m, b, e, j) += T1(j, f) * OVVV(m, b, e, f)
    enddo f
    do n
      get T1(n, b)
      get OOVO(m, n, e, j)
      tOVVO(m, b, e, j) -= T1(n, b) * OOVO(m, n, e, j)
    enddo n
    do n
      do f
        get T2(j, n, f, b)
        get T1(j, f)
        get T1(n, b)
        x4(j, n, f, b) = 0.5 * T2(j, n, f, b)
        x4(j, n, f, b) += T1(j, f) * T1(n, b)
        get OOVV(m, n, e, f)
        sOVVO(m, b, e, j) = x4(j, n, f, b) * OOVV(m, n, e, f)
        tOVVO(m, b, e, j) -= sOVVO(m, b, e, j)
      enddo f
    enddo n
    put WMBEJ(m, b, e, j) = tOVVO(m, b, e, j)
  endpardo m, b, e, j
  sip_barrier
  server_barrier

  # -------------------------------------------- T1 update
  pardo i, a
    t2x(i, a) = 0.0
    do e
      get T1(i, e)
      get FAE(a, e)
      t2x(i, a) += T1(i, e) * FAE(a, e)
    enddo e
    do m
      get T1(m, a)
      get FMI(m, i)
      t2x(i, a) -= T1(m, a) * FMI(m, i)
    enddo m
    do m
      do e
        get T2(i, m, a, e)
        get FME(m, e)
        t2x(i, a) += T2(i, m, a, e) * FME(m, e)
      enddo e
    enddo m
    do n
      do f
        get T1(n, f)
        get OVOV(n, a, i, f)
        t2x(i, a) -= T1(n, f) * OVOV(n, a, i, f)
      enddo f
    enddo n
    do m
      do e
        do f
          get T2(i, m, e, f)
          get OVVV(m, a, e, f)
          s2x(i, a) = T2(i, m, e, f) * OVVV(m, a, e, f)
          t2x(i, a) -= 0.5 * s2x(i, a)
        enddo f
      enddo e
    enddo m
    do m
      do n
        do e
          get T2(m, n, a, e)
          get OOVO(n, m, e, i)
          s2x(i, a) = T2(m, n, a, e) * OOVO(n, m, e, i)
          t2x(i, a) -= 0.5 * s2x(i, a)
        enddo e
      enddo n
    enddo m
    execute cc_denominator2 t2x(i, a)
    put T1N(i, a) = t2x(i, a)
  endpardo i, a

  # -------------------------------------------- T2 update
  pardo i, j, a, b
    get OOVV(i, j, a, b)
    t4(i, j, a, b) = OOVV(i, j, a, b)

    # P(ab) sum_e t2[i,j,a,e] (FAE[b,e] - 1/2 sum_m t1[m,b] FME[m,e])
    do e
      get FAE(b, e)
      w2(b, e) = FAE(b, e)
      do m
        get T1(m, b)
        get FME(m, e)
        v2(b, e) = T1(m, b) * FME(m, e)
        w2(b, e) -= 0.5 * v2(b, e)
      enddo m
      get T2(i, j, a, e)
      t4(i, j, a, b) += T2(i, j, a, e) * w2(b, e)
      get FAE(a, e)
      w2(a, e) = FAE(a, e)
      do m
        get T1(m, a)
        get FME(m, e)
        v2(a, e) = T1(m, a) * FME(m, e)
        w2(a, e) -= 0.5 * v2(a, e)
      enddo m
      get T2(i, j, b, e)
      t4(i, j, a, b) -= T2(i, j, b, e) * w2(a, e)
    enddo e

    # -P(ij) sum_m t2[i,m,a,b] (FMI[m,j] + 1/2 sum_e t1[j,e] FME[m,e])
    do m
      get FMI(m, j)
      tOO(m, j) = FMI(m, j)
      do e
        get T1(j, e)
        get FME(m, e)
        sOO(m, j) = T1(j, e) * FME(m, e)
        tOO(m, j) += 0.5 * sOO(m, j)
      enddo e
      get T2(i, m, a, b)
      t4(i, j, a, b) -= T2(i, m, a, b) * tOO(m, j)
      get FMI(m, i)
      tOO(m, i) = FMI(m, i)
      do e
        get T1(i, e)
        get FME(m, e)
        sOO(m, i) = T1(i, e) * FME(m, e)
        tOO(m, i) += 0.5 * sOO(m, i)
      enddo e
      get T2(j, m, a, b)
      t4(i, j, a, b) += T2(j, m, a, b) * tOO(m, i)
    enddo m

    # + 1/2 sum_mn tau[m,n,a,b] WMNIJ[m,n,i,j]
    u4(i, j, a, b) = 0.0
    do m
      do n
        get TAU(m, n, a, b)
        get WMNIJ(m, n, i, j)
        u4(i, j, a, b) += TAU(m, n, a, b) * WMNIJ(m, n, i, j)
      enddo n
    enddo m
    t4(i, j, a, b) += 0.5 * u4(i, j, a, b)

    # + 1/2 sum_ef tau[i,j,e,f] WABEF[a,b,e,f]
    u4(i, j, a, b) = 0.0
    do e
      do f
        get TAU(i, j, e, f)
        request WABEF(a, b, e, f)
        u4(i, j, a, b) += TAU(i, j, e, f) * WABEF(a, b, e, f)
      enddo f
    enddo e
    t4(i, j, a, b) += 0.5 * u4(i, j, a, b)

    # + P(ij)P(ab) [ sum_me t2[i,m,a,e] WMBEJ[m,b,e,j]
    #                - t1[i,e] t1[m,a] <mb||ej> ]
    do m
      do e
        get T2(i, m, a, e)
        get WMBEJ(m, b, e, j)
        t4(i, j, a, b) += T2(i, m, a, e) * WMBEJ(m, b, e, j)
        get T2(j, m, a, e)
        get WMBEJ(m, b, e, i)
        t4(i, j, a, b) -= T2(j, m, a, e) * WMBEJ(m, b, e, i)
        get T2(i, m, b, e)
        get WMBEJ(m, a, e, j)
        t4(i, j, a, b) -= T2(i, m, b, e) * WMBEJ(m, a, e, j)
        get T2(j, m, b, e)
        get WMBEJ(m, a, e, i)
        t4(i, j, a, b) += T2(j, m, b, e) * WMBEJ(m, a, e, i)

        get T1(i, e)
        get T1(j, e)
        get T1(m, a)
        get T1(m, b)
        get OVVO(m, b, e, j)
        get OVVO(m, b, e, i)
        get OVVO(m, a, e, j)
        get OVVO(m, a, e, i)
        o4(i, e, m, a) = T1(i, e) * T1(m, a)
        t4(i, j, a, b) -= o4(i, e, m, a) * OVVO(m, b, e, j)
        o4(j, e, m, a) = T1(j, e) * T1(m, a)
        t4(i, j, a, b) += o4(j, e, m, a) * OVVO(m, b, e, i)
        o4(i, e, m, b) = T1(i, e) * T1(m, b)
        t4(i, j, a, b) += o4(i, e, m, b) * OVVO(m, a, e, j)
        o4(j, e, m, b) = T1(j, e) * T1(m, b)
        t4(i, j, a, b) -= o4(j, e, m, b) * OVVO(m, a, e, i)
      enddo e
    enddo m

    # + P(ij) sum_e t1[i,e] <ab||ej>
    do e
      get T1(i, e)
      get T1(j, e)
      get VVVO(a, b, e, j)
      get VVVO(a, b, e, i)
      t4(i, j, a, b) += T1(i, e) * VVVO(a, b, e, j)
      t4(i, j, a, b) -= T1(j, e) * VVVO(a, b, e, i)
    enddo e

    # - P(ab) sum_m t1[m,a] <mb||ij>
    do m
      get T1(m, a)
      get T1(m, b)
      get OVOO(m, b, i, j)
      get OVOO(m, a, i, j)
      t4(i, j, a, b) -= T1(m, a) * OVOO(m, b, i, j)
      t4(i, j, a, b) += T1(m, b) * OVOO(m, a, i, j)
    enddo m

    execute cc_denominator4 t4(i, j, a, b)
    put T2N(i, j, a, b) = t4(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  # -------------------------------------------- rotate buffers
  pardo i, a
    get T1N(i, a)
    t2x(i, a) = T1N(i, a)
    put T1(i, a) = t2x(i, a)
  endpardo i, a
  pardo i, j, a, b
    get T2N(i, j, a, b)
    t4(i, j, a, b) = T2N(i, j, a, b)
    put T2(i, j, a, b) = t4(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier
  server_barrier
enddo iter

# ------------------------------------------------------------- energy
# E = 1/4 sum <ij||ab> t2[i,j,a,b] + 1/2 sum <ij||ab> t1[i,a] t1[j,b]
e1 = 0.0
e2 = 0.0
pardo i, j, a, b
  get OOVV(i, j, a, b)
  get T2(i, j, a, b)
  e2 += OOVV(i, j, a, b) * T2(i, j, a, b)
  get T1(i, a)
  get T1(j, b)
  s4(i, j, a, b) = T1(i, a) * T1(j, b)
  e1 += OOVV(i, j, a, b) * s4(i, j, a, b)
endpardo i, j, a, b
collective e1
collective e2
ecc = 0.25 * e2 + 0.5 * e1
endsial ccsd
"""
