"""The perturbative-triples correction E(T) in SIAL.

The Fig.-5 method, and the program that *needs* Section IV-E's
subindex machinery: the connected/disconnected triples amplitudes are
six-dimensional, so their blocks are formed over subindexed virtual
dimensions (sub^3 x seg^3 elements instead of an infeasible seg^6),
while the four-dimensional operands are read as slices of full blocks.

For each T3 block the program accumulates the nine P(i/jk)P(a/bc)
permutations of

    disc[ijkabc] = t1[i,a] <jk||bc>
    conn[ijkabc] = sum_e t2[j,k,a,e] <ei||bc> - sum_m t2[i,m,b,c] <ma||jk>

(signs ++, +-, +-, -+, ++, ++, -+, ++, ++ pattern from the two cyclic
antisymmetrizers), then a user super instruction applies the triples
weight ``conn * (conn + disc) / D3`` in place, and a collective scalar
contraction with a unit block accumulates

    E(T) = 1/36 sum conn (conn + disc) / D3.

Validated against :func:`repro.chem.ccsd_t` on the same amplitudes.
"""

from __future__ import annotations

__all__ = ["CCSD_T_SIAL"]

CCSD_T_SIAL = """
sial ccsd_t
symbolic no
symbolic nv
moindex i = 1, no
moindex j = 1, no
moindex k = 1, no
moindex m = 1, no
moaindex a = 1, nv
moaindex b = 1, nv
moaindex c = 1, nv
moaindex e = 1, nv
subindex aa of a
subindex bb of b
subindex cc of c

distributed T1(i, a)
distributed T2(i, j, a, b)
distributed OOVV(j, k, b, c)
distributed VOVV(e, i, b, c)
distributed OVOO(m, a, j, k)

temp T3C(i, j, k, aa, bb, cc)
temp T3D(i, j, k, aa, bb, cc)
temp ONES(i, j, k, aa, bb, cc)
scalar etr

etr = 0.0
pardo i, j, k, a, b, c
  do aa in a
    do bb in b
      do cc in c
        # ---------------- disconnected triples (9 permutations)
        T3D(i, j, k, aa, bb, cc) = 0.0
        get T1(i, a)
        get T1(j, a)
        get T1(k, a)
        get T1(i, b)
        get T1(j, b)
        get T1(k, b)
        get T1(i, c)
        get T1(j, c)
        get T1(k, c)
        get OOVV(j, k, b, c)
        get OOVV(j, k, a, c)
        get OOVV(j, k, b, a)
        get OOVV(i, k, b, c)
        get OOVV(i, k, a, c)
        get OOVV(i, k, b, a)
        get OOVV(j, i, b, c)
        get OOVV(j, i, a, c)
        get OOVV(j, i, b, a)
        T3D(i, j, k, aa, bb, cc) += T1(i, aa) * OOVV(j, k, bb, cc)
        T3D(i, j, k, aa, bb, cc) -= T1(i, bb) * OOVV(j, k, aa, cc)
        T3D(i, j, k, aa, bb, cc) -= T1(i, cc) * OOVV(j, k, bb, aa)
        T3D(i, j, k, aa, bb, cc) -= T1(j, aa) * OOVV(i, k, bb, cc)
        T3D(i, j, k, aa, bb, cc) += T1(j, bb) * OOVV(i, k, aa, cc)
        T3D(i, j, k, aa, bb, cc) += T1(j, cc) * OOVV(i, k, bb, aa)
        T3D(i, j, k, aa, bb, cc) -= T1(k, aa) * OOVV(j, i, bb, cc)
        T3D(i, j, k, aa, bb, cc) += T1(k, bb) * OOVV(j, i, aa, cc)
        T3D(i, j, k, aa, bb, cc) += T1(k, cc) * OOVV(j, i, bb, aa)

        # ---------------- connected triples, particle part
        T3C(i, j, k, aa, bb, cc) = 0.0
        do e
          get T2(j, k, a, e)
          get T2(j, k, b, e)
          get T2(j, k, c, e)
          get T2(i, k, a, e)
          get T2(i, k, b, e)
          get T2(i, k, c, e)
          get T2(j, i, a, e)
          get T2(j, i, b, e)
          get T2(j, i, c, e)
          get VOVV(e, i, b, c)
          get VOVV(e, i, a, c)
          get VOVV(e, i, b, a)
          get VOVV(e, j, b, c)
          get VOVV(e, j, a, c)
          get VOVV(e, j, b, a)
          get VOVV(e, k, b, c)
          get VOVV(e, k, a, c)
          get VOVV(e, k, b, a)
          T3C(i, j, k, aa, bb, cc) += T2(j, k, aa, e) * VOVV(e, i, bb, cc)
          T3C(i, j, k, aa, bb, cc) -= T2(j, k, bb, e) * VOVV(e, i, aa, cc)
          T3C(i, j, k, aa, bb, cc) -= T2(j, k, cc, e) * VOVV(e, i, bb, aa)
          T3C(i, j, k, aa, bb, cc) -= T2(i, k, aa, e) * VOVV(e, j, bb, cc)
          T3C(i, j, k, aa, bb, cc) += T2(i, k, bb, e) * VOVV(e, j, aa, cc)
          T3C(i, j, k, aa, bb, cc) += T2(i, k, cc, e) * VOVV(e, j, bb, aa)
          T3C(i, j, k, aa, bb, cc) -= T2(j, i, aa, e) * VOVV(e, k, bb, cc)
          T3C(i, j, k, aa, bb, cc) += T2(j, i, bb, e) * VOVV(e, k, aa, cc)
          T3C(i, j, k, aa, bb, cc) += T2(j, i, cc, e) * VOVV(e, k, bb, aa)
        enddo e

        # ---------------- connected triples, hole part
        do m
          get T2(i, m, b, c)
          get T2(i, m, a, c)
          get T2(i, m, b, a)
          get T2(j, m, b, c)
          get T2(j, m, a, c)
          get T2(j, m, b, a)
          get T2(k, m, b, c)
          get T2(k, m, a, c)
          get T2(k, m, b, a)
          get OVOO(m, a, j, k)
          get OVOO(m, b, j, k)
          get OVOO(m, c, j, k)
          get OVOO(m, a, i, k)
          get OVOO(m, b, i, k)
          get OVOO(m, c, i, k)
          get OVOO(m, a, j, i)
          get OVOO(m, b, j, i)
          get OVOO(m, c, j, i)
          T3C(i, j, k, aa, bb, cc) -= T2(i, m, bb, cc) * OVOO(m, aa, j, k)
          T3C(i, j, k, aa, bb, cc) += T2(i, m, aa, cc) * OVOO(m, bb, j, k)
          T3C(i, j, k, aa, bb, cc) += T2(i, m, bb, aa) * OVOO(m, cc, j, k)
          T3C(i, j, k, aa, bb, cc) += T2(j, m, bb, cc) * OVOO(m, aa, i, k)
          T3C(i, j, k, aa, bb, cc) -= T2(j, m, aa, cc) * OVOO(m, bb, i, k)
          T3C(i, j, k, aa, bb, cc) -= T2(j, m, bb, aa) * OVOO(m, cc, i, k)
          T3C(i, j, k, aa, bb, cc) += T2(k, m, bb, cc) * OVOO(m, aa, j, i)
          T3C(i, j, k, aa, bb, cc) -= T2(k, m, aa, cc) * OVOO(m, bb, j, i)
          T3C(i, j, k, aa, bb, cc) -= T2(k, m, bb, aa) * OVOO(m, cc, j, i)
        enddo m

        # weight in place: T3C <- conn (conn + disc) / D3
        execute triples_weight T3C(i, j, k, aa, bb, cc), T3D(i, j, k, aa, bb, cc)
        ONES(i, j, k, aa, bb, cc) = 1.0
        etr += T3C(i, j, k, aa, bb, cc) * ONES(i, j, k, aa, bb, cc)
      enddo cc
    enddo bb
  enddo aa
endpardo i, j, k, a, b, c
collective etr
etr = etr / 36.0
endsial ccsd_t
"""
