"""User super instructions for the SIAL application programs.

The main one is the orbital-energy denominator: dividing an amplitude
block elementwise by ``e_i + e_j - e_a - e_b`` needs the *global*
element offsets of the block, which the SIP passes to super
instructions via ``KernelOperand.element_ranges``.  In ACES III these
are Fortran super instructions; here they are closures over the
orbital-energy vectors, built per run.
"""

from __future__ import annotations

from math import prod
from typing import Callable, Sequence

import numpy as np

from ..sip.registry import SuperCall

__all__ = ["make_energy_denominator", "mp2_denominator", "cc_denominator"]


def make_energy_denominator(
    axes: Sequence[tuple[np.ndarray, float]],
) -> Callable[[SuperCall], float]:
    """A super instruction dividing a block by an orbital-energy sum.

    ``axes`` pairs each block axis with (energy vector, sign); the
    denominator at element (p0, p1, ...) is ``sum_k sign_k * eps_k[pk]``.
    Example: MP2 amplitudes over (i, a, j, b) use
    ``[(e_occ, +1), (e_virt, -1), (e_occ, +1), (e_virt, -1)]``.
    """
    axes = [(np.asarray(e, dtype=np.float64), float(s)) for e, s in axes]

    def denominator(call: SuperCall) -> float:
        block = call.blocks[0]
        if len(block.shape) != len(axes):
            raise ValueError(
                f"energy denominator built for rank {len(axes)}, "
                f"applied to rank {len(block.shape)} block"
            )
        if call.real and block.data is not None:
            denom = np.zeros((1,) * len(axes))
            for k, (eps, sign) in enumerate(axes):
                lo, hi = block.element_ranges[k]
                shape = [1] * len(axes)
                shape[k] = hi - lo
                denom = denom + sign * eps[lo:hi].reshape(shape)
            block.data[...] /= denom
        # one divide (+ the denominator adds) per element
        return float(len(axes) * prod(block.shape, start=1))

    return denominator


def mp2_denominator(
    e_occ: np.ndarray, e_virt: np.ndarray
) -> Callable[[SuperCall], float]:
    """Denominator for (i, a, j, b)-ordered MP2 amplitude blocks."""
    return make_energy_denominator(
        [(e_occ, +1.0), (e_virt, -1.0), (e_occ, +1.0), (e_virt, -1.0)]
    )


def cc_denominator(
    e_occ: np.ndarray, e_virt: np.ndarray
) -> Callable[[SuperCall], float]:
    """Denominator for (i, j, a, b)-ordered CC amplitude blocks."""
    return make_energy_denominator(
        [(e_occ, +1.0), (e_occ, +1.0), (e_virt, -1.0), (e_virt, -1.0)]
    )


def triples_weight(
    e_occ: np.ndarray, e_virt: np.ndarray
) -> Callable[[SuperCall], float]:
    """In-place triples energy weight for (i,j,k,a,b,c) blocks.

    Given the connected and disconnected T3 blocks (both *undivided*
    by the denominator), overwrites the first with

        conn * (conn + disc) / D3,   D3 = e_i+e_j+e_k-e_a-e_b-e_c,

    so a scalar contraction with a unit block accumulates the (T)
    energy.  Used by :data:`repro.programs.triples_sial.CCSD_T_SIAL`.
    """
    e_occ = np.asarray(e_occ, dtype=np.float64)
    e_virt = np.asarray(e_virt, dtype=np.float64)
    signs = [
        (e_occ, +1.0),
        (e_occ, +1.0),
        (e_occ, +1.0),
        (e_virt, -1.0),
        (e_virt, -1.0),
        (e_virt, -1.0),
    ]

    def weight(call: SuperCall) -> float:
        conn, disc = call.blocks[0], call.blocks[1]
        if call.real and conn.data is not None:
            d3 = np.zeros((1,) * 6)
            for k, (eps, sign) in enumerate(signs):
                lo, hi = conn.element_ranges[k]
                shape = [1] * 6
                shape[k] = hi - lo
                d3 = d3 + sign * eps[lo:hi].reshape(shape)
            conn.data[...] = conn.data * (conn.data + disc.data) / d3
        return 4.0 * float(prod(conn.shape, start=1))

    return weight
