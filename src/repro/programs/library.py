"""SIAL source programs.

The application layer of the reproduction: real SIAL programs for the
workloads the paper evaluates (a CC-style amplitude iteration, an MP2
energy, a Fock matrix build), plus the paper's own Section IV-D
contraction example.  Each is validated against the numpy references
in :mod:`repro.chem` by the integration tests.

Note the division of labour the paper advocates: these programs are
pure orchestration -- loops over blocks, get/put/request/prepare, one
contraction per statement -- while the flop-heavy work lives in super
instructions (intrinsic ones plus the orbital-energy denominators
registered in :mod:`repro.programs.supers`).
"""

from __future__ import annotations

__all__ = [
    "PAPER_CONTRACTION",
    "MP2_ENERGY",
    "UHF_MP2_ENERGY",
    "AO2MO_TRANSFORM",
    "LCCD_ITERATION",
    "LCCD_ANDERSON",
    "SIXD_SUBINDEX",
    "FOCK_BUILD",
    "CHECKPOINT_DEMO",
    "ALL_PROGRAMS",
]

# ---------------------------------------------------------------------------
# The contraction term of Section IV-D, verbatim program structure:
#     R(M,N,I,J) = sum_{L,S} V(M,N,L,S) * T(L,S,I,J)
# with V an (on-demand) integral array.
# ---------------------------------------------------------------------------
PAPER_CONTRACTION = """
sial paper_contraction
symbolic norb
symbolic nocc
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L, S, I, J)
distributed R(M, N, I, J)
temp V(M, N, L, S)
temp tmp(M, N, I, J)
temp tmpsum(M, N, I, J)

pardo M, N, I, J
  tmpsum(M, N, I, J) = 0.0
  do L
    do S
      get T(L, S, I, J)
      compute_integrals V(M, N, L, S)
      tmp(M, N, I, J) = V(M, N, L, S) * T(L, S, I, J)
      tmpsum(M, N, I, J) += tmp(M, N, I, J)
    enddo S
  enddo L
  put R(M, N, I, J) = tmpsum(M, N, I, J)
endpardo M, N, I, J
endsial paper_contraction
"""

# ---------------------------------------------------------------------------
# Closed-shell MP2 energy from MO-basis (ia|jb) integrals:
#   E2 = sum (ia|jb) [2 (ia|jb) - (ib|ja)] / (ei - ea + ej - eb)
# The denominator is a user super instruction (registered with the
# orbital energies closed over), exactly how ACES III does it.
# ---------------------------------------------------------------------------
MP2_ENERGY = """
sial mp2_energy
symbolic no
symbolic nv
moindex i = 1, no
moindex j = 1, no
moaindex a = 1, nv
moaindex b = 1, nv
distributed V(i, a, j, b)
temp X(i, a, j, b)
temp T(i, a, j, b)
scalar emp2

emp2 = 0.0
pardo i, a, j, b
  get V(i, a, j, b)
  get V(i, b, j, a)
  X(i, a, j, b) = 2.0 * V(i, a, j, b)
  T(i, a, j, b) = V(i, b, j, a)
  X(i, a, j, b) -= T(i, a, j, b)
  execute mp2_denominator X(i, a, j, b)
  emp2 += V(i, a, j, b) * X(i, a, j, b)
endpardo i, a, j, b
collective emp2
endsial mp2_energy
"""

# ---------------------------------------------------------------------------
# UHF MP2 energy (the Fig. 7 workload's energy): three spin channels.
# Alpha orbitals use the moaindex kind, beta the mobindex kind, so the
# type system statically rejects cross-spin index mix-ups.
#   E = 1/2 sum_aa (ia|jb)[(ia|jb)-(ib|ja)]/D
#     + 1/2 sum_bb (...)
#     +     sum_ab (ia|jb)^2 / D
# ---------------------------------------------------------------------------
UHF_MP2_ENERGY = """
sial uhf_mp2_energy
symbolic noa
symbolic nva
symbolic nob
symbolic nvb
moaindex i = 1, noa
moaindex j = 1, noa
moaindex a = 1, nva
moaindex b = 1, nva
mobindex ib = 1, nob
mobindex jb = 1, nob
mobindex ab = 1, nvb
mobindex bb = 1, nvb
distributed VAA(i, a, j, b)
distributed VBB(ib, ab, jb, bb)
distributed VAB(i, a, jb, bb)
temp XA(i, a, j, b)
temp XB(ib, ab, jb, bb)
temp XM(i, a, jb, bb)
scalar eaa
scalar ebb
scalar eab
scalar emp2

eaa = 0.0
pardo i, a, j, b
  get VAA(i, a, j, b)
  get VAA(i, b, j, a)
  XA(i, a, j, b) = VAA(i, a, j, b)
  XA(i, a, j, b) -= VAA(i, b, j, a)
  execute denom_aa XA(i, a, j, b)
  eaa += VAA(i, a, j, b) * XA(i, a, j, b)
endpardo i, a, j, b
collective eaa
eaa *= 0.5

ebb = 0.0
pardo ib, ab, jb, bb
  get VBB(ib, ab, jb, bb)
  get VBB(ib, bb, jb, ab)
  XB(ib, ab, jb, bb) = VBB(ib, ab, jb, bb)
  XB(ib, ab, jb, bb) -= VBB(ib, bb, jb, ab)
  execute denom_bb XB(ib, ab, jb, bb)
  ebb += VBB(ib, ab, jb, bb) * XB(ib, ab, jb, bb)
endpardo ib, ab, jb, bb
collective ebb
ebb *= 0.5

eab = 0.0
pardo i, a, jb, bb
  get VAB(i, a, jb, bb)
  XM(i, a, jb, bb) = VAB(i, a, jb, bb)
  execute denom_ab XM(i, a, jb, bb)
  eab += VAB(i, a, jb, bb) * XM(i, a, jb, bb)
endpardo i, a, jb, bb
collective eab

emp2 = eaa + ebb + eab
endsial uhf_mp2_energy
"""

# ---------------------------------------------------------------------------
# The four-step O(n^5) AO -> MO integral transformation, the workhorse
# that precedes every correlated calculation.  AO integrals are
# computed on demand; each quarter transform contracts one index with
# the (replicated) MO coefficient matrix and stores the intermediate in
# a distributed array, with barriers separating the phases.
# ---------------------------------------------------------------------------
AO2MO_TRANSFORM = """
sial ao2mo_transform
symbolic nb
aoindex mu = 1, nb
aoindex nu = 1, nb
aoindex la = 1, nb
aoindex si = 1, nb
moindex p = 1, nb
moindex q = 1, nb
moindex r = 1, nb
moindex s = 1, nb
static C(mu, p)
distributed T1(p, nu, la, si)
distributed T2(p, q, la, si)
distributed T3(p, q, r, si)
distributed VMO(p, q, r, s)
temp V(mu, nu, la, si)
temp W1(p, nu, la, si)
temp W2(p, q, la, si)
temp W3(p, q, r, si)
temp W4(p, q, r, s)

pardo nu, la, si
  do p
    W1(p, nu, la, si) = 0.0
    do mu
      compute_integrals V(mu, nu, la, si)
      W1(p, nu, la, si) += C(mu, p) * V(mu, nu, la, si)
    enddo mu
    put T1(p, nu, la, si) = W1(p, nu, la, si)
  enddo p
endpardo nu, la, si
sip_barrier

pardo p, la, si
  do q
    W2(p, q, la, si) = 0.0
    do nu
      get T1(p, nu, la, si)
      W2(p, q, la, si) += C(nu, q) * T1(p, nu, la, si)
    enddo nu
    put T2(p, q, la, si) = W2(p, q, la, si)
  enddo q
endpardo p, la, si
sip_barrier

pardo p, q, si
  do r
    W3(p, q, r, si) = 0.0
    do la
      get T2(p, q, la, si)
      W3(p, q, r, si) += C(la, r) * T2(p, q, la, si)
    enddo la
    put T3(p, q, r, si) = W3(p, q, r, si)
  enddo r
endpardo p, q, si
sip_barrier

pardo p, q, r
  do s
    W4(p, q, r, s) = 0.0
    do si
      get T3(p, q, r, si)
      W4(p, q, r, s) += C(si, s) * T3(p, q, r, si)
    enddo si
    put VMO(p, q, r, s) = W4(p, q, r, s)
  enddo s
endpardo p, q, r
endsial ao2mo_transform
"""

# ---------------------------------------------------------------------------
# Linearized CCD (CEPA(0)) over spin orbitals: the repository's
# CC-iteration workload.  Index kinds: moindex = occupied spin
# orbitals, moaindex = virtual spin orbitals (so the type system
# rejects occ/virt mix-ups).  The O(v^4) <ab||ef> integrals are a
# *served* (disk-backed) array, as in the paper's large calculations.
#
#   R[i,j,a,b] = <ij||ab>
#              + 1/2 sum_ef <ab||ef> t[i,j,e,f]      (particle ladder)
#              + 1/2 sum_mn <mn||ij> t[m,n,a,b]      (hole ladder)
#              + P(ij) P(ab) sum_me t[i,m,a,e] <mb||ej>   (ring)
#   t <- R / D
# ---------------------------------------------------------------------------
LCCD_ITERATION = """
sial lccd_iteration
symbolic no
symbolic nv
symbolic niter
moindex i = 1, no
moindex j = 1, no
moindex m = 1, no
moindex n = 1, no
moaindex a = 1, nv
moaindex b = 1, nv
moaindex e = 1, nv
moaindex f = 1, nv
index iter = 1, niter
distributed OOVV(i, j, a, b)
served VVVV(a, b, e, f)
distributed OOOO(m, n, i, j)
distributed OVVO(m, b, e, j)
distributed T2(i, j, a, b)
distributed T2N(i, j, a, b)
distributed RING(i, j, a, b)
temp tR(i, j, a, b)
temp tmp(i, j, a, b)
scalar elccd

# initial guess: t = <ij||ab> / D
pardo i, j, a, b
  get OOVV(i, j, a, b)
  tR(i, j, a, b) = OOVV(i, j, a, b)
  execute cc_denominator tR(i, j, a, b)
  put T2(i, j, a, b) = tR(i, j, a, b)
endpardo i, j, a, b
sip_barrier

do iter
  # ring intermediate RING[i,j,a,b] = sum_me t[i,m,a,e] <mb||ej>
  pardo i, j, a, b
    tmp(i, j, a, b) = 0.0
    do m
      do e
        get T2(i, m, a, e)
        get OVVO(m, b, e, j)
        tmp(i, j, a, b) += T2(i, m, a, e) * OVVO(m, b, e, j)
      enddo e
    enddo m
    put RING(i, j, a, b) = tmp(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  # assemble the residual and divide by the denominator
  pardo i, j, a, b
    get OOVV(i, j, a, b)
    tR(i, j, a, b) = OOVV(i, j, a, b)

    tmp(i, j, a, b) = 0.0
    do e
      do f
        request VVVV(a, b, e, f)
        get T2(i, j, e, f)
        tmp(i, j, a, b) += VVVV(a, b, e, f) * T2(i, j, e, f)
      enddo f
    enddo e
    tR(i, j, a, b) += 0.5 * tmp(i, j, a, b)

    tmp(i, j, a, b) = 0.0
    do m
      do n
        get OOOO(m, n, i, j)
        get T2(m, n, a, b)
        tmp(i, j, a, b) += OOOO(m, n, i, j) * T2(m, n, a, b)
      enddo n
    enddo m
    tR(i, j, a, b) += 0.5 * tmp(i, j, a, b)

    get RING(i, j, a, b)
    get RING(j, i, a, b)
    get RING(i, j, b, a)
    get RING(j, i, b, a)
    tR(i, j, a, b) += RING(i, j, a, b)
    tR(i, j, a, b) -= RING(j, i, a, b)
    tR(i, j, a, b) -= RING(i, j, b, a)
    tR(i, j, a, b) += RING(j, i, b, a)

    execute cc_denominator tR(i, j, a, b)
    put T2N(i, j, a, b) = tR(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  # t <- t_new (double buffer swap by copy)
  pardo i, j, a, b
    get T2N(i, j, a, b)
    tR(i, j, a, b) = T2N(i, j, a, b)
    put T2(i, j, a, b) = tR(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier
enddo iter

# E = 1/4 sum <ij||ab> t[i,j,a,b]
elccd = 0.0
pardo i, j, a, b
  get OOVV(i, j, a, b)
  get T2(i, j, a, b)
  elccd += OOVV(i, j, a, b) * T2(i, j, a, b)
endpardo i, j, a, b
collective elccd
elccd *= 0.25
endsial lccd_iteration
"""

# ---------------------------------------------------------------------------
# LCCD with Anderson (depth-1 DIIS) convergence acceleration -- the
# "convergence acceleration algorithm" whose extra amplitude copies
# drive the paper's Section II storage arithmetic.  Per sweep:
#
#   u      = R(t) / D                      (plain LCCD update)
#   theta  = <dr, r> / <dr, dr>            r = u - t, dr = r - r_prev
#   t_next = (1 - theta) u + theta u_prev
#
# The mixing coefficient is computed *in SIAL scalar arithmetic* from
# collective full contractions; the extra state (t_prev, u_prev) lives
# in additional distributed arrays, exactly the storage growth the
# paper describes.
# ---------------------------------------------------------------------------
LCCD_ANDERSON = """
sial lccd_anderson
symbolic no
symbolic nv
symbolic niter
moindex i = 1, no
moindex j = 1, no
moindex m = 1, no
moindex n = 1, no
moaindex a = 1, nv
moaindex b = 1, nv
moaindex e = 1, nv
moaindex f = 1, nv
index iter = 1, niter
distributed OOVV(i, j, a, b)
served VVVV(a, b, e, f)
distributed OOOO(m, n, i, j)
distributed OVVO(m, b, e, j)
distributed T2(i, j, a, b)
distributed T2P(i, j, a, b)
distributed U(i, j, a, b)
distributed UP(i, j, a, b)
distributed T2N(i, j, a, b)
distributed RING(i, j, a, b)
temp tR(i, j, a, b)
temp tmp(i, j, a, b)
temp tres(i, j, a, b)
temp tqp(i, j, a, b)
temp tdf(i, j, a, b)
scalar d1
scalar d2
scalar th
scalar elccd

# initial guess: t = <ij||ab> / D
pardo i, j, a, b
  get OOVV(i, j, a, b)
  tR(i, j, a, b) = OOVV(i, j, a, b)
  execute cc_denominator tR(i, j, a, b)
  put T2(i, j, a, b) = tR(i, j, a, b)
endpardo i, j, a, b
sip_barrier

do iter
  # ring intermediate from the current amplitudes
  pardo i, j, a, b
    tmp(i, j, a, b) = 0.0
    do m
      do e
        get T2(i, m, a, e)
        get OVVO(m, b, e, j)
        tmp(i, j, a, b) += T2(i, m, a, e) * OVVO(m, b, e, j)
      enddo e
    enddo m
    put RING(i, j, a, b) = tmp(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  # plain update u = R(t) / D, stored in U
  pardo i, j, a, b
    get OOVV(i, j, a, b)
    tR(i, j, a, b) = OOVV(i, j, a, b)
    tmp(i, j, a, b) = 0.0
    do e
      do f
        request VVVV(a, b, e, f)
        get T2(i, j, e, f)
        tmp(i, j, a, b) += VVVV(a, b, e, f) * T2(i, j, e, f)
      enddo f
    enddo e
    tR(i, j, a, b) += 0.5 * tmp(i, j, a, b)
    tmp(i, j, a, b) = 0.0
    do m
      do n
        get OOOO(m, n, i, j)
        get T2(m, n, a, b)
        tmp(i, j, a, b) += OOOO(m, n, i, j) * T2(m, n, a, b)
      enddo n
    enddo m
    tR(i, j, a, b) += 0.5 * tmp(i, j, a, b)
    get RING(i, j, a, b)
    get RING(j, i, a, b)
    get RING(i, j, b, a)
    get RING(j, i, b, a)
    tR(i, j, a, b) += RING(i, j, a, b)
    tR(i, j, a, b) -= RING(j, i, a, b)
    tR(i, j, a, b) -= RING(i, j, b, a)
    tR(i, j, a, b) += RING(j, i, b, a)
    execute cc_denominator tR(i, j, a, b)
    put U(i, j, a, b) = tR(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier

  if iter == 1
    # first sweep: t_next = u; initialize the history arrays
    pardo i, j, a, b
      get T2(i, j, a, b)
      get U(i, j, a, b)
      tR(i, j, a, b) = T2(i, j, a, b)
      put T2P(i, j, a, b) = tR(i, j, a, b)
      tR(i, j, a, b) = U(i, j, a, b)
      put UP(i, j, a, b) = tR(i, j, a, b)
      put T2N(i, j, a, b) = tR(i, j, a, b)
    endpardo i, j, a, b
  else
    # mixing coefficient from two collective full contractions
    d1 = 0.0
    d2 = 0.0
    pardo i, j, a, b
      get U(i, j, a, b)
      get T2(i, j, a, b)
      get UP(i, j, a, b)
      get T2P(i, j, a, b)
      tres(i, j, a, b) = U(i, j, a, b) - T2(i, j, a, b)
      tqp(i, j, a, b) = UP(i, j, a, b) - T2P(i, j, a, b)
      tdf(i, j, a, b) = tres(i, j, a, b) - tqp(i, j, a, b)
      d1 += tdf(i, j, a, b) * tres(i, j, a, b)
      d2 += tdf(i, j, a, b) * tdf(i, j, a, b)
    endpardo i, j, a, b
    collective d1
    collective d2
    th = d1 / (d2 + 1.0e-30)
    sip_barrier

    # extrapolate and rotate the history
    pardo i, j, a, b
      get U(i, j, a, b)
      get UP(i, j, a, b)
      get T2(i, j, a, b)
      tmp(i, j, a, b) = (1.0 - th) * U(i, j, a, b)
      tmp(i, j, a, b) += th * UP(i, j, a, b)
      put T2N(i, j, a, b) = tmp(i, j, a, b)
      tR(i, j, a, b) = T2(i, j, a, b)
      put T2P(i, j, a, b) = tR(i, j, a, b)
      tR(i, j, a, b) = U(i, j, a, b)
      put UP(i, j, a, b) = tR(i, j, a, b)
    endpardo i, j, a, b
  endif
  sip_barrier

  # t <- t_next
  pardo i, j, a, b
    get T2N(i, j, a, b)
    tR(i, j, a, b) = T2N(i, j, a, b)
    put T2(i, j, a, b) = tR(i, j, a, b)
  endpardo i, j, a, b
  sip_barrier
enddo iter

# E = 1/4 sum <ij||ab> t[i,j,a,b]
elccd = 0.0
pardo i, j, a, b
  get OOVV(i, j, a, b)
  get T2(i, j, a, b)
  elccd += OOVV(i, j, a, b) * T2(i, j, a, b)
endpardo i, j, a, b
collective elccd
elccd *= 0.25
endsial lccd_anderson
"""

# ---------------------------------------------------------------------------
# Closed-shell Fock build (the Fig.-6 workload): F = H + J - K/2 with
# both contraction families over on-demand AO integrals.
# ---------------------------------------------------------------------------
FOCK_BUILD = """
sial fock_build
symbolic nb
aoindex mu = 1, nb
aoindex nu = 1, nb
aoindex la = 1, nb
aoindex si = 1, nb
static H(mu, nu)
static DENS(mu, nu)
distributed F(mu, nu)
temp V(mu, nu, la, si)
temp W(mu, la, nu, si)
temp tJ(mu, nu)
temp tK(mu, nu)
temp tF(mu, nu)

pardo mu, nu
  tJ(mu, nu) = 0.0
  tK(mu, nu) = 0.0
  do la
    do si
      compute_integrals V(mu, nu, la, si)
      tJ(mu, nu) += V(mu, nu, la, si) * DENS(la, si)
      compute_integrals W(mu, la, nu, si)
      tK(mu, nu) += W(mu, la, nu, si) * DENS(la, si)
    enddo si
  enddo la
  tF(mu, nu) = H(mu, nu)
  tF(mu, nu) += tJ(mu, nu)
  tK(mu, nu) *= 0.5
  tF(mu, nu) -= tK(mu, nu)
  put F(mu, nu) = tF(mu, nu)
endpardo mu, nu
endsial fock_build
"""

# ---------------------------------------------------------------------------
# Section IV-E's motivating case: A(a,b,c,k) * B(k,l,m,n) produces a
# SIX-dimensional result whose full seg^6 blocks would not fit in
# memory.  The subindex mechanism solves it: two of C's dimensions are
# declared with subindices, so its blocks are seg^4 x sub^2 -- and the
# operands are accessed as *slices* of their full blocks (the paper's
# slice/insertion feature) inside `do ... in` loops.
# ---------------------------------------------------------------------------
SIXD_SUBINDEX = """
sial sixd_subindex
symbolic nb
aoindex a = 1, nb
aoindex b = 1, nb
aoindex c = 1, nb
aoindex k = 1, nb
aoindex l = 1, nb
aoindex m = 1, nb
aoindex n = 1, nb
subindex aa of a
subindex ll of l
distributed DA(a, b, c, k)
distributed DB(k, l, m, n)
distributed DC(aa, b, c, ll, m, n)
temp TAA(aa, b, c, k)
temp TBB(k, ll, m, n)
temp TC(aa, b, c, ll, m, n)

pardo a, b, c, l, m, n
  do aa in a
    do ll in l
      TC(aa, b, c, ll, m, n) = 0.0
      do k
        get DA(a, b, c, k)
        TAA(aa, b, c, k) = DA(aa, b, c, k)
        get DB(k, l, m, n)
        TBB(k, ll, m, n) = DB(k, ll, m, n)
        TC(aa, b, c, ll, m, n) += TAA(aa, b, c, k) * TBB(k, ll, m, n)
      enddo k
      put DC(aa, b, c, ll, m, n) = TC(aa, b, c, ll, m, n)
    enddo ll
  enddo aa
endpardo a, b, c, l, m, n
endsial sixd_subindex
"""

# ---------------------------------------------------------------------------
# Checkpoint/restart demonstration: phase one fills an array and
# checkpoints; a restarted run (restart = 1) skips the expensive phase
# and reloads the serialized blocks instead -- the paper's rudimentary
# checkpointing facility built from blocks_to_list / list_to_blocks.
# ---------------------------------------------------------------------------
CHECKPOINT_DEMO = """
sial checkpoint_demo
symbolic nb
symbolic restart
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
distributed OUT(M, N)
temp T(M, N)
scalar phase2

if restart == 0.0
  pardo M, N
    T(M, N) = 1.0
    put D(M, N) = T(M, N)
  endpardo M, N
  sip_barrier
  checkpoint
else
  list_to_blocks D
endif

pardo M, N
  get D(M, N)
  T(M, N) = 2.0 * D(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
phase2 = 1.0
endsial checkpoint_demo
"""

from .ccsd_sial import CCSD_SIAL  # noqa: E402  (programs registry)
from .triples_sial import CCSD_T_SIAL  # noqa: E402

ALL_PROGRAMS: dict[str, str] = {
    "paper_contraction": PAPER_CONTRACTION,
    "ccsd": CCSD_SIAL,
    "ccsd_t": CCSD_T_SIAL,
    "mp2_energy": MP2_ENERGY,
    "uhf_mp2_energy": UHF_MP2_ENERGY,
    "ao2mo_transform": AO2MO_TRANSFORM,
    "lccd_iteration": LCCD_ITERATION,
    "lccd_anderson": LCCD_ANDERSON,
    "sixd_subindex": SIXD_SUBINDEX,
    "fock_build": FOCK_BUILD,
    "checkpoint_demo": CHECKPOINT_DEMO,
}
