"""High-level public API of the Super Instruction Architecture reproduction.

Typical use::

    from repro import api

    program = api.compile_sial(source)          # SIAL -> SIA bytecode
    config = api.SIPConfig(workers=8, segment_size=4)
    report = api.dry_run(program, config, symbolics={"norb": 32})
    result = api.run(program, config, symbolics={"norb": 32})
    result.array("R"), result.scalar("e"), result.profile.report()
"""

from __future__ import annotations

from typing import Optional, Union

from .machines import MACHINES, Machine, get_machine
from .sial import CompiledProgram, compile_source, disassemble
from .sip import RunResult, SIPConfig
from .sip.blocks import ResolvedIndexTable
from .sip.dryrun import DryRunReport
from .sip.dryrun import dry_run as _dry_run
from .sip.runner import run_program

__all__ = [
    "MACHINES",
    "Machine",
    "SIPConfig",
    "compile_sial",
    "disassemble",
    "dry_run",
    "get_machine",
    "run",
]


def compile_sial(source: str, filename: str = "<sial>") -> CompiledProgram:
    """Compile SIAL source text into SIA bytecode."""
    return compile_source(source, filename)


def run(
    program: Union[str, CompiledProgram],
    config: Optional[SIPConfig] = None,
    symbolics: Optional[dict[str, float]] = None,
) -> RunResult:
    """Execute a SIAL program (source or compiled) on the simulated SIP."""
    if isinstance(program, str):
        program = compile_sial(program)
    return run_program(program, config, symbolics)


def dry_run(
    program: Union[str, CompiledProgram],
    config: Optional[SIPConfig] = None,
    symbolics: Optional[dict[str, float]] = None,
) -> DryRunReport:
    """The master's memory-feasibility analysis, without executing."""
    if isinstance(program, str):
        program = compile_sial(program)
    config = config if config is not None else SIPConfig()
    table = ResolvedIndexTable(
        program,
        symbolics or {},
        segment_size=config.segment_size,
        segment_sizes=config.segment_sizes,
        subsegments_per_segment=config.subsegments_per_segment,
    )
    return _dry_run(program, config, table)
